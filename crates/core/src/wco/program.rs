//! [`WcoProgram`]: a [`WorstCaseOptimalPlan`] compiled to an
//! [`MpcProgram`], runnable unchanged on `Cluster::run`, `run_async` and
//! the `mpc-net` transports.
//!
//! Dataflow (two rounds when any heavy pattern is active, one otherwise):
//!
//! * **Round 1** — the input server of relation `R` sends each tuple
//!   whose heavy pattern is `∅` into the light HyperCube grid (ordinary
//!   hashed routing at the cover shares), and *stages* each tuple needed
//!   by at least one heavy grid onto a single server chosen by hashing
//!   the whole tuple over all `p` servers (tag `wco.stage##R`). Staging
//!   spreads the heavy-bound volume evenly: `O(ℓn/p)` extra per server.
//! * **Round 2** — every server re-emits its staged tuples to the grid
//!   cells of the heavy patterns that want them, under the plain relation
//!   tag. Atoms missing a grid dimension are replicated across it (the
//!   broadcast-join). Destinations are a pure function of
//!   `(tag, tuple, round)`, as the tuple-based model requires.
//! * **Output** — every grid cell (light or heavy) evaluates the query
//!   locally; cells of no grid (possible when `p` exceeds the sum of
//!   grid volumes) only staged and report nothing. Each answer is formed
//!   in exactly one cell of exactly one grid — the partition property the
//!   differential suite pins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_cq::{Atom, Query};
use mpc_sim::program::{hash_to_bucket, hash_value};
use mpc_sim::{MpcProgram, Routed, ServerState};
use mpc_storage::{Database, Relation, Tuple};

use crate::shares::consistent_cells;
use crate::wco::plan::{WcoPattern, WorstCaseOptimalPlan};
use crate::Result;

/// Tag prefix of staged (round-1 parked, round-2 re-emitted) tuples.
const STAGE_PREFIX: &str = "wco.stage##";

/// The worst-case optimal heavy/light program. See the [module
/// docs](self) for the round structure.
#[derive(Debug, Clone)]
pub struct WcoProgram {
    plan: WorstCaseOptimalPlan,
    /// Per-variable hash seeds for light dimensions.
    var_seeds: Vec<u64>,
    /// Seed of the round-1 staging hash.
    stage_seed: u64,
}

impl WcoProgram {
    /// Plan against `db` and compile.
    ///
    /// # Errors
    ///
    /// Propagates planning (LP, allocation) errors; rejects `p = 0`.
    pub fn new(query: &Query, db: &Database, p: usize, seed: u64) -> Result<Self> {
        Ok(Self::with_plan(WorstCaseOptimalPlan::build(query, db, p)?, seed))
    }

    /// Plan from shared, possibly sampled [`mpc_data::DbStatistics`] and
    /// compile (see [`WorstCaseOptimalPlan::build_with_stats`] for what
    /// changes under sampling — plan quality, never the output).
    ///
    /// # Errors
    ///
    /// Propagates planning (LP, allocation) errors; rejects `p = 0`.
    pub fn new_with_stats(
        query: &Query,
        db: &Database,
        p: usize,
        seed: u64,
        stats: &mpc_data::DbStatistics,
    ) -> Result<Self> {
        Ok(Self::with_plan(WorstCaseOptimalPlan::build_with_stats(query, db, p, stats)?, seed))
    }

    /// Compile an already-built plan.
    pub fn with_plan(plan: WorstCaseOptimalPlan, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let var_seeds = (0..plan.query().num_vars()).map(|_| rng.gen()).collect();
        let stage_seed = rng.gen();
        WcoProgram { plan, var_seeds, stage_seed }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &WorstCaseOptimalPlan {
        &self.plan
    }

    /// Destination cells (global server indices) of one tuple of `atom`
    /// inside one pattern's grid: heavy dimensions are value-indexed
    /// (heavy rank mod share), light dimensions hashed, dimensions the
    /// atom does not fix are free (the replication).
    fn grid_destinations(&self, pat: &WcoPattern, atom: &Atom, tuple: &Tuple) -> Vec<usize> {
        let mut partial: Vec<Option<usize>> = vec![None; self.plan.query().num_vars()];
        for (pos, var) in atom.vars.iter().enumerate() {
            let value = tuple.values()[pos];
            let share = pat.shares[var.0].max(1);
            let coord = if pat.heavy_vars.contains(var) {
                match self.plan.heavy().index_of(*var, value) {
                    Some(rank) => rank % share,
                    // The caller only routes pattern-compatible tuples;
                    // a non-heavy value here means an incompatible tuple.
                    None => return Vec::new(),
                }
            } else {
                hash_value(self.var_seeds[var.0], value, share)
            };
            partial[var.0] = Some(coord);
        }
        consistent_cells(&pat.shares, &partial).into_iter().map(|c| c + pat.offset).collect()
    }

    /// The single staging server of a tuple: an even hash of the whole
    /// tuple over all `p` servers, salted per relation so distinct
    /// relations spread independently.
    fn stage_server(&self, atom_index: usize, tuple: &Tuple) -> usize {
        let salt = self.stage_seed ^ (atom_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        hash_to_bucket(salt, tuple.values(), self.plan.p())
    }
}

impl MpcProgram for WcoProgram {
    fn num_rounds(&self) -> usize {
        self.plan.num_rounds()
    }

    fn route_input(&self, relation: &Relation, _p: usize) -> mpc_sim::Result<Vec<Routed>> {
        let query = self.plan.query();
        let Some((atom_id, atom)) = query.atom_by_name(relation.name()) else {
            return Ok(Vec::new());
        };
        let light = &self.plan.patterns()[0];
        let mut out = Vec::new();
        for t in relation.iter() {
            // Tuples disagreeing on a repeated variable never join.
            let Some(phi) = self.plan.heavy().pattern_of(atom, t) else { continue };
            if phi.is_empty() {
                out.push(Routed::new(
                    relation.name(),
                    t.clone(),
                    self.grid_destinations(light, atom, t),
                ));
            }
            if !self.plan.heavy_patterns_for(atom, &phi).is_empty() {
                out.push(Routed::new(
                    format!("{STAGE_PREFIX}{}", relation.name()),
                    t.clone(),
                    vec![self.stage_server(atom_id.0, t)],
                ));
            }
        }
        Ok(out)
    }

    fn route_tuples(
        &self,
        round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Routed>> {
        if round != 2 {
            return Ok(Vec::new());
        }
        let query = self.plan.query();
        let mut out = Vec::new();
        for tag in state.tags() {
            let Some(name) = tag.strip_prefix(STAGE_PREFIX) else { continue };
            let Some((_, atom)) = query.atom_by_name(name) else { continue };
            let staged = state.relation(tag).expect("tag was just listed");
            for t in staged.iter() {
                let Some(phi) = self.plan.heavy().pattern_of(atom, t) else { continue };
                let mut dests = Vec::new();
                for pi in self.plan.heavy_patterns_for(atom, &phi) {
                    dests.extend(self.grid_destinations(&self.plan.patterns()[pi], atom, t));
                }
                if !dests.is_empty() {
                    out.push(Routed::new(name, t.clone(), dests));
                }
            }
        }
        Ok(out)
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        _state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        Ok(Vec::new())
    }

    fn output(&self, server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        let query = self.plan.query();
        let empty = || Relation::empty(query.name(), query.num_vars());
        if self.plan.pattern_of_server(server).is_none() {
            // A pure staging server: holds parked copies, owns no grid cell.
            return Ok(empty());
        }
        for atom in query.atoms() {
            if state.relation(&atom.name).is_none() {
                return Ok(empty());
            }
        }
        // Staged tags remain in the state, but the evaluator only reads
        // the relations the query's atoms name.
        let db = state.as_database();
        Ok(mpc_storage::join::evaluate(query, &db)?)
    }

    /// The heavy grid cells. A heavy cell's final-round inbound is
    /// exactly the round-2 broadcast-join flows under plain atom tags
    /// (light tuples go to the light grid in round 1, staged copies
    /// travel under `STAGE_PREFIX` tags), and [`WcoProgram::output`]
    /// evaluates the query on precisely those relations — a pure
    /// function of the tuples routed at the cell. That satisfies the
    /// relocation contract of [`MpcProgram::reroutable_cells`], so the
    /// adaptive runtime may move a heavy cell off a straggler without
    /// changing the join.
    fn reroutable_cells(&self) -> Vec<usize> {
        if self.plan.num_rounds() < 2 {
            // One-round (skew-free) plans have no movable round-2 inbound.
            return Vec::new();
        }
        (0..self.plan.p())
            .filter(|&s| matches!(self.plan.pattern_of_server(s), Some(pi) if pi >= 1))
            .collect()
    }

    fn output_name(&self) -> String {
        self.plan.query().name().to_string()
    }

    fn output_arity(&self) -> usize {
        self.plan.query().num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_data::skew::{heavy_hitter_database, zipf_database};
    use mpc_sim::{Cluster, MpcConfig};
    use mpc_storage::join::evaluate;

    fn run_wco(q: &Query, db: &Database, p: usize, seed: u64) -> mpc_sim::RunResult {
        let program = WcoProgram::new(q, db, p, seed).unwrap();
        let cluster = Cluster::new(MpcConfig::new(p, 0.9)).unwrap();
        cluster.run(&program, db).unwrap()
    }

    #[test]
    fn matches_sequential_join_on_matchings() {
        let q = families::triangle();
        let db = matching_database(&q, 900, 3);
        let result = run_wco(&q, &db, 27, 7);
        assert!(result.output.same_tuples(&evaluate(&q, &db).unwrap()));
        assert_eq!(result.rounds.len(), 1, "skew-free input is one round");
    }

    #[test]
    fn matches_sequential_join_on_zipf_skew() {
        // Moderate Zipf skew may or may not cross the heavy threshold;
        // the output must be exact either way.
        for (qi, q) in [families::triangle(), families::cycle(4)].into_iter().enumerate() {
            let db = zipf_database(&q, 600, 1500, 1.4, 21 + qi as u64);
            let result = run_wco(&q, &db, 16, 5);
            let expected = evaluate(&q, &db).unwrap();
            assert!(
                result.output.same_tuples(&expected),
                "{}: {} vs {} tuples",
                q.name(),
                result.output.len(),
                expected.len()
            );
        }
    }

    #[test]
    fn matches_sequential_join_under_heavy_hitters() {
        // Half of every relation shares one key: the heavy side activates
        // and the broadcast-join round runs.
        for (qi, q) in [families::triangle(), families::cycle(4)].into_iter().enumerate() {
            // deg = 0.6·1500 = 900 planted copies; 900·share > 1500 at
            // every share ≥ 2, so the hitter is heavy for both queries.
            let db = heavy_hitter_database(&q, 1200, 1500, 0.6, 21 + qi as u64);
            let result = run_wco(&q, &db, 16, 5);
            let expected = evaluate(&q, &db).unwrap();
            assert!(
                result.output.same_tuples(&expected),
                "{}: {} vs {} tuples",
                q.name(),
                result.output.len(),
                expected.len()
            );
            assert_eq!(result.rounds.len(), 2, "{}: skew activates the heavy side", q.name());
        }
    }

    #[test]
    fn answers_partition_across_servers_exactly() {
        // Σ per-server outputs == total output: no duplicate answers
        // across grids (each answer is formed in exactly one cell).
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 500, 1200, 0.5, 9);
        let result = run_wco(&q, &db, 12, 3);
        let total: usize = result.per_server_output.iter().sum();
        assert_eq!(total, result.output.len());
    }

    #[test]
    fn single_heavy_value_triangle_is_exact() {
        // A planted star: value 0 occurs in every S3 tuple's second slot,
        // making x1 maximally heavy. All answers go through one pattern.
        let q = families::triangle();
        let mut db = Database::new(64);
        let s1: Vec<[u64; 2]> = (1..=20).map(|i| [0u64, i]).collect();
        let s2: Vec<[u64; 2]> = (1..=20).map(|i| [i, i + 20]).collect();
        let s3: Vec<[u64; 2]> = (21..=40).map(|i| [i, 0u64]).collect();
        db.insert_relation(Relation::from_tuples("S1", 2, s1).unwrap());
        db.insert_relation(Relation::from_tuples("S2", 2, s2).unwrap());
        db.insert_relation(Relation::from_tuples("S3", 2, s3).unwrap());
        let expected = evaluate(&q, &db).unwrap();
        assert_eq!(expected.len(), 20, "the star closes 20 triangles");
        let result = run_wco(&q, &db, 8, 11);
        assert!(result.output.same_tuples(&expected));
    }

    #[test]
    fn sampled_planning_preserves_the_output() {
        // The tentpole guarantee: a plan built from a seeded sample routes
        // differently (its heavy lists may be smaller, its grids differ)
        // but computes the *same* join — sampling degrades balance, never
        // correctness.
        use mpc_data::{DbStatistics, StatsMode};
        for (qi, q) in [families::triangle(), families::cycle(4)].into_iter().enumerate() {
            let db = zipf_database(&q, 2500, 4000, 1.3, 31 + qi as u64);
            let expected = evaluate(&q, &db).unwrap();
            for seed in [2u64, 19] {
                let mode = StatsMode::Sampled { budget: 600, seed };
                let stats = DbStatistics::collect(&db, mode);
                let program = WcoProgram::new_with_stats(&q, &db, 16, 5, &stats).unwrap();
                let cluster = Cluster::new(MpcConfig::new(16, 0.9)).unwrap();
                let result = cluster.run(&program, &db).unwrap();
                assert!(
                    result.output.same_tuples(&expected),
                    "{} seed {seed}: {} vs {} tuples",
                    q.name(),
                    result.output.len(),
                    expected.len()
                );
                // Answers still partition across servers: no duplicates.
                let total: usize = result.per_server_output.iter().sum();
                assert_eq!(total, result.output.len());
            }
        }
    }

    #[test]
    fn reroutable_cells_are_exactly_the_heavy_grid() {
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 1200, 1500, 0.6, 21);
        let program = WcoProgram::new(&q, &db, 16, 5).unwrap();
        let cells = program.reroutable_cells();
        assert!(!cells.is_empty(), "heavy input must expose movable cells");
        for &c in &cells {
            let pi = program.plan().pattern_of_server(c).expect("a cell owns a grid");
            assert!(pi >= 1, "server {c} is in the light grid, not movable");
        }
        // Skew-free input: one round, nothing movable.
        let flat = matching_database(&q, 900, 3);
        let one_round = WcoProgram::new(&q, &flat, 27, 7).unwrap();
        assert_eq!(one_round.num_rounds(), 1);
        assert!(one_round.reroutable_cells().is_empty());
    }

    #[test]
    fn adaptive_rerouting_preserves_the_join_and_recovers_makespan() {
        // The differential wall of the adaptive runtime: inject a
        // straggler on a heavy grid cell, let the controller move the
        // cell, and pin that (a) the rerouted output is byte-identical
        // to the static one and the sequential join, (b) answers still
        // partition across servers, (c) the rerouted makespan is
        // strictly shorter, (d) the decision replays deterministically.
        use mpc_sim::reroute::RerouteSpec;
        use mpc_sim::{AsyncConfig, StragglerSpec};
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 1200, 1500, 0.6, 21);
        let p = 16;
        let program = WcoProgram::new(&q, &db, p, 5).unwrap();
        let cells = program.reroutable_cells();
        // Pick the first straggler seed that lands on a movable cell, so
        // the plan is guaranteed non-trivial.
        let seed = (0..64u64)
            .find(|&s| StragglerSpec::new(s, 1, 8).pick(p).iter().any(|c| cells.contains(c)))
            .expect("some seed hits a heavy cell");
        let cfg = AsyncConfig::new().with_straggler(StragglerSpec::new(seed, 1, 8));
        let cluster = Cluster::new(MpcConfig::new(p, 0.9)).unwrap();
        let run = cluster.run_adaptive(&program, &db, &cfg, &RerouteSpec::default()).unwrap();
        assert!(!run.plan.is_empty(), "the straggling heavy cell must move");
        assert_eq!(run.divergence(), None);
        assert!(run.adaptive.result.output.same_tuples(&evaluate(&q, &db).unwrap()));
        let placed: usize = run.adaptive.result.per_server_output.iter().sum();
        assert_eq!(placed, run.adaptive.result.output.len(), "answers still partition");
        assert!(
            run.recovery() > 0.0,
            "moving work off the straggler must shorten the schedule \
             (static {} vs rerouted {})",
            run.baseline.schedule.makespan,
            run.adaptive.schedule.makespan
        );
        assert!(run.observed.iter().any(|s| s.tuples > 0), "live counters were surfaced");
        let again = cluster.run_adaptive(&program, &db, &cfg, &RerouteSpec::default()).unwrap();
        assert_eq!(run.plan, again.plan, "the decision is deterministic");
        assert!(run.adaptive.result.output.same_tuples(&again.adaptive.result.output));
    }

    #[test]
    fn rerouting_is_inert_without_stragglers() {
        // No straggler, no signal: the plan is empty and the adaptive
        // run replays the static schedule's volumes exactly.
        use mpc_sim::reroute::RerouteSpec;
        use mpc_sim::AsyncConfig;
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 800, 1000, 0.5, 9);
        let cluster = Cluster::new(MpcConfig::new(12, 0.9)).unwrap();
        let program = WcoProgram::new(&q, &db, 12, 3).unwrap();
        let run = cluster
            .run_adaptive(&program, &db, &AsyncConfig::new(), &RerouteSpec::default())
            .unwrap();
        assert!(run.plan.is_empty());
        assert_eq!(run.divergence(), None);
        assert_eq!(run.baseline.result.rounds, run.adaptive.result.rounds);
        assert_eq!(run.baseline.result.per_server_output, run.adaptive.result.per_server_output);
    }

    #[test]
    fn routing_is_deterministic() {
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 300, 800, 0.5, 13);
        let a = run_wco(&q, &db, 9, 5);
        let b = run_wco(&q, &db, 9, 5);
        assert!(a.output.same_tuples(&b.output));
        assert_eq!(a.rounds, b.rounds);
    }
}
