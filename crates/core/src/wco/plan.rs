//! The worst-case optimal plan: degree statistics, heavy patterns and
//! server-group carving.
//!
//! Planning consumes the database *statistics* (degree histograms), never
//! the data at routing time: everything a router needs — heavy value
//! lists, group offsets, share vectors — is frozen into the plan, so
//! destinations remain a pure function of `(tag, tuple, round)` as the
//! tuple-based MPC model requires, and every process planning from the
//! same `(query, database, p)` builds bit-identical routing.

use std::collections::{BTreeMap, BTreeSet};

use mpc_cq::{Atom, Query, VarId};
use mpc_data::{DbStatistics, RelationStats, StatsMode};
use mpc_lp::{QueryLps, Rational};
use mpc_storage::{Database, Tuple, Value};

use crate::error::CoreError;
use crate::multiround::lower_bound::round_lower_bound;
use crate::shares::ShareAllocation;
use crate::wco::effective_epsilon;
use crate::Result;

/// The per-variable heavy value lists a plan is keyed on: value `v` is
/// heavy at variable `x` when its degree at some occurrence of `x`
/// exceeds `|R| / p_x` for that atom's relation `R` and `x`'s cover-based
/// share `p_x` (so variables the HyperCube does not balance on — share 1
/// — have no heavy values: their skew never concentrates load).
#[derive(Debug, Clone, Default)]
pub struct HeavyValues {
    /// Sorted heavy values, indexed by `VarId`.
    values: Vec<Vec<Value>>,
}

impl HeavyValues {
    /// No heavy values for `k` variables.
    pub fn none(k: usize) -> Self {
        HeavyValues { values: vec![Vec::new(); k] }
    }

    /// The sorted heavy values of a variable.
    pub fn of(&self, var: VarId) -> &[Value] {
        &self.values[var.0]
    }

    /// Is `value` heavy at `var`?
    pub fn is_heavy(&self, var: VarId, value: Value) -> bool {
        self.values[var.0].binary_search(&value).is_ok()
    }

    /// The index of a heavy value in its variable's sorted list (the
    /// value-indexed grid coordinate before the modulus).
    pub fn index_of(&self, var: VarId, value: Value) -> Option<usize> {
        self.values[var.0].binary_search(&value).ok()
    }

    /// Number of heavy values at `var`.
    pub fn count(&self, var: VarId) -> usize {
        self.values[var.0].len()
    }

    /// Variables with at least one heavy value, ascending.
    pub fn heavy_vars(&self) -> Vec<VarId> {
        (0..self.values.len()).filter(|i| !self.values[*i].is_empty()).map(VarId).collect()
    }

    /// Drop the heavy values of `var` (demote it to light).
    fn demote(&mut self, var: VarId) {
        self.values[var.0].clear();
    }

    /// The heavy pattern of one tuple of `atom`: the atom's variables
    /// whose value is heavy. `None` for tuples that disagree on a
    /// repeated variable (they can never contribute to an answer).
    pub fn pattern_of(&self, atom: &Atom, tuple: &Tuple) -> Option<BTreeSet<VarId>> {
        let mut pattern = BTreeSet::new();
        let mut seen: BTreeMap<VarId, Value> = BTreeMap::new();
        for (pos, var) in atom.vars.iter().enumerate() {
            let value = tuple.values()[pos];
            match seen.insert(*var, value) {
                Some(prev) if prev != value => return None,
                _ => {}
            }
            if self.is_heavy(*var, value) {
                pattern.insert(*var);
            }
        }
        Some(pattern)
    }
}

/// One pattern group of the plan: the servers and shares dedicated to the
/// answers whose heavy configuration is exactly
/// [`WcoPattern::heavy_vars`]. Index 0 is always the light pattern
/// (`heavy_vars = ∅`, the skew-free HyperCube).
#[derive(Debug, Clone)]
pub struct WcoPattern {
    /// The variables fixed to heavy values (`∅` = the light pattern).
    pub heavy_vars: BTreeSet<VarId>,
    /// Full-width share vector over the query's variables. Heavy
    /// variables are *value-indexed* dimensions (coordinate = heavy rank
    /// mod share); light variables are hashed; the product is ≤
    /// [`WcoPattern::group_size`].
    pub shares: Vec<usize>,
    /// First server (global index) of this pattern's grid.
    pub offset: usize,
    /// Servers granted to the pattern (`cells() ≤ group_size`).
    pub group_size: usize,
    /// Tuples each atom routes into this grid (before replication), in
    /// atom order — read off the planning scan (exact statistics), or
    /// scaled up from the planning sample (sampled statistics).
    pub atom_tuples: Vec<u64>,
    /// The fractional edge-cover value `ρ*` of the residual query (heavy
    /// variables deleted); `None` when every variable is heavy and the
    /// residual is a pure filter. This is the AGM exponent the group's
    /// load target `n_H / u^{1/ρ*_H}` is read from.
    pub residual_rho_star: Option<Rational>,
}

impl WcoPattern {
    /// Number of grid cells, `∏ shares`.
    pub fn cells(&self) -> usize {
        self.shares.iter().product()
    }

    /// Does global server `s` belong to this pattern's grid?
    pub fn owns_server(&self, s: usize) -> bool {
        s >= self.offset && s < self.offset + self.cells()
    }

    /// Replication factor of one tuple of `atom` in this grid: the
    /// product of the shares of the dimensions the atom does not fix.
    pub fn replication_of(&self, atom: &Atom) -> usize {
        let fixed = atom.distinct_vars();
        self.shares
            .iter()
            .enumerate()
            .filter(|(i, _)| !fixed.contains(&VarId(*i)))
            .map(|(_, s)| *s)
            .product()
    }
}

/// The worst-case optimal multi-round plan for one `(query, database, p)`
/// triple: heavy value lists, one grid per active heavy pattern, and the
/// light HyperCube — see the [module docs](crate::wco) for the algorithm.
#[derive(Debug, Clone)]
pub struct WorstCaseOptimalPlan {
    query: Query,
    p: usize,
    /// Largest base relation cardinality (the `n` of the load targets).
    n: u64,
    heavy: HeavyValues,
    /// Pattern groups; index 0 is the light pattern.
    patterns: Vec<WcoPattern>,
    /// Number of base tuples the staging round distributes (tuples
    /// needed by at least one heavy grid) — exact under
    /// [`StatsMode::Exact`], a scaled estimate under sampling.
    staged_tuples: u64,
    /// `τ*` of the full query (the one-round load exponent).
    tau_star: Rational,
    /// `ρ*` of the full query (the AGM load exponent).
    rho_star: Rational,
}

impl WorstCaseOptimalPlan {
    /// Plan against the given database with exact (full-scan) statistics.
    ///
    /// Missing relations are treated as empty (the join is then empty,
    /// and so is every pattern's grid traffic). Heavy variables are
    /// demoted by total heavy mass when `p` cannot host one group per
    /// active pattern plus the light grid.
    ///
    /// # Errors
    ///
    /// Rejects `p = 0`; propagates LP and allocation errors.
    pub fn build(query: &Query, db: &Database, p: usize) -> Result<Self> {
        Self::build_with_stats(query, db, p, &DbStatistics::collect(db, StatsMode::Exact))
    }

    /// Plan from already-collected [`DbStatistics`] — the adaptive-runtime
    /// entry point, sharing one scan (or one seeded sample) with the
    /// strategy picker and the skew detector.
    ///
    /// Under [`StatsMode::Exact`] this is exactly [`Self::build`] (and
    /// cheaper when the caller already holds the statistics: the per-column
    /// histograms are read, not recomputed per `(atom, position)`).
    /// Under [`StatsMode::Sampled`] planning touches only the sampled
    /// tuples, so its cost is `O(budget · #relations)` instead of
    /// `O(Σ n_R)`, and two things change — both on the side of caution,
    /// never correctness:
    ///
    /// * heavy values, pattern masses and [`Self::staged_tuples`] become
    ///   scaled estimates within [`RelationStats::slack_for`];
    /// * **every** non-empty subset of the detected heavy variables is
    ///   treated as active: a sampled scan can prove a pattern populated
    ///   but never empty, and a grid-less active pattern would silently
    ///   drop the answers routed at it. Extra patterns only cost servers
    ///   (each idle grid still gets ≥ 1), and demotion keeps the pattern
    ///   count below `p` as in the exact path.
    ///
    /// A heavy value the sample misses is *consistently* light to routing
    /// and planning alike (the plan's [`HeavyValues`] are the single
    /// source of truth at both), so the computed join is byte-identical
    /// to the exact plan's — only the load balance degrades.
    ///
    /// # Errors
    ///
    /// Rejects `p = 0`; propagates LP and allocation errors.
    pub fn build_with_stats(
        query: &Query,
        db: &Database,
        p: usize,
        stats: &DbStatistics,
    ) -> Result<Self> {
        if p == 0 {
            return Err(CoreError::InvalidPlan("p must be at least 1".to_string()));
        }
        let lps = QueryLps::solve(query)?;
        let tau_star = lps.covering_number();
        let rho_star = lps.edge_cover().total();
        let n = query
            .atoms()
            .iter()
            .filter_map(|a| db.relation(&a.name).ok())
            .map(|r| r.len() as u64)
            .max()
            .unwrap_or(0);

        let base = ShareAllocation::optimal(query, p)?;
        let mut heavy = detect_heavy(query, stats, &base);

        // Demote until every active pattern (plus the light grid) can be
        // granted at least one server.
        let (mut pattern_counts, mut active) = scan_patterns(query, db, &heavy, stats);
        while active.len() + 1 > p {
            let weakest = heavy
                .heavy_vars()
                .into_iter()
                .min_by_key(|v| heavy_mass(query, &pattern_counts, *v))
                .expect("active patterns imply heavy variables");
            heavy.demote(weakest);
            let rescan = scan_patterns(query, db, &heavy, stats);
            pattern_counts = rescan.0;
            active = rescan.1;
        }

        // Tuple mass per group, light first, for proportional carving.
        let mass_of = |h: &BTreeSet<VarId>| -> u64 {
            query
                .atoms()
                .iter()
                .zip(&pattern_counts)
                .map(|(atom, counts)| {
                    let induced: BTreeSet<VarId> =
                        atom.distinct_vars().intersection(h).copied().collect();
                    counts.get(&induced).copied().unwrap_or(0)
                })
                .sum()
        };
        let light_mass = mass_of(&BTreeSet::new());
        let masses: Vec<u64> =
            std::iter::once(light_mass).chain(active.iter().map(&mass_of)).collect();
        let group_sizes = proportional_groups(p, &masses);

        let mut patterns = Vec::with_capacity(active.len() + 1);
        let mut offset = 0usize;
        for (idx, group_size) in group_sizes.into_iter().enumerate() {
            let heavy_vars = if idx == 0 { BTreeSet::new() } else { active[idx - 1].clone() };
            let atom_tuples: Vec<u64> = query
                .atoms()
                .iter()
                .zip(&pattern_counts)
                .map(|(atom, counts)| {
                    let induced: BTreeSet<VarId> =
                        atom.distinct_vars().intersection(&heavy_vars).copied().collect();
                    counts.get(&induced).copied().unwrap_or(0)
                })
                .collect();
            let (shares, residual_rho_star) = if heavy_vars.is_empty() {
                (ShareAllocation::optimal(query, group_size)?.shares, Some(rho_star))
            } else {
                let shares =
                    capped_greedy_shares(query, &heavy_vars, &heavy, &atom_tuples, group_size);
                let rho = match residual_query(query, &heavy_vars) {
                    Some(rq) => Some(QueryLps::solve(&rq)?.edge_cover().total()),
                    None => None,
                };
                (shares, rho)
            };
            let pattern = WcoPattern {
                heavy_vars,
                shares,
                offset,
                group_size,
                atom_tuples,
                residual_rho_star,
            };
            offset += pattern.cells();
            patterns.push(pattern);
        }

        // Exact staging volume: a base tuple is staged when some heavy
        // grid needs it, i.e. its own pattern is the one some active `H`
        // induces on the atom.
        let staged_tuples = query
            .atoms()
            .iter()
            .zip(&pattern_counts)
            .map(|(atom, counts)| {
                counts
                    .iter()
                    .filter(|(phi, _)| {
                        active.iter().any(|h| {
                            atom.distinct_vars().intersection(h).copied().collect::<BTreeSet<_>>()
                                == **phi
                        })
                    })
                    .map(|(_, c)| *c)
                    .sum::<u64>()
            })
            .sum();

        Ok(WorstCaseOptimalPlan {
            query: query.clone(),
            p,
            n,
            heavy,
            patterns,
            staged_tuples,
            tau_star,
            rho_star,
        })
    }

    /// The planned query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The server count the plan was carved for.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The largest base relation cardinality.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The heavy value lists.
    pub fn heavy(&self) -> &HeavyValues {
        &self.heavy
    }

    /// All pattern groups, the light pattern first.
    pub fn patterns(&self) -> &[WcoPattern] {
        &self.patterns
    }

    /// Tuples the staging shuffle of round 1 distributes (exact under
    /// exact statistics, a scaled estimate under sampling).
    pub fn staged_tuples(&self) -> u64 {
        self.staged_tuples
    }

    /// `τ*` of the query (one-round load exponent `n/p^{1/τ*}`).
    pub fn tau_star(&self) -> Rational {
        self.tau_star
    }

    /// `ρ*` of the query (AGM load exponent `n/p^{1/ρ*}`).
    pub fn rho_star(&self) -> Rational {
        self.rho_star
    }

    /// Rounds this plan executes on *this* database: 1 when no heavy
    /// pattern is active (pure skew-free HyperCube), 2 otherwise.
    pub fn num_rounds(&self) -> usize {
        if self.patterns.len() > 1 {
            2
        } else {
            1
        }
    }

    /// Rounds the strategy needs on *worst-case* databases for this
    /// query: single-atom queries are one shuffle; everything else may
    /// need the staging + broadcast-join pair.
    pub fn worst_case_rounds(&self) -> usize {
        if self.query.num_atoms() <= 1 {
            1
        } else {
            2
        }
    }

    /// The multi-round lower bound at this strategy's effective space
    /// exponent `ε = 1 − 1/ρ*` — the floor [`Self::worst_case_rounds`]
    /// is verified against. The bound is stated over matching databases,
    /// so for queries with `τ* = ρ*` (cycles, cliques) it evaluates at
    /// `ε = ε*` where one round suffices on matchings — the strategy's
    /// extra round is the price of *skewed* inputs, which the matching
    /// bound cannot see. At any `ε < ε*` the same machinery certifies
    /// ≥ 2 rounds, which is what the property suite checks.
    ///
    /// # Errors
    ///
    /// Propagates LP/enumeration errors of the lower-bound machinery.
    pub fn round_floor(&self) -> Result<usize> {
        round_lower_bound(&self.query, effective_epsilon(self.rho_star)?)
    }

    /// Verify the plan against the existing multi-round lower bound
    /// (`multiround/lower_bound.rs`): this strategy's worst-case round
    /// count must sit on or above [`Self::round_floor`] — it must never
    /// claim fewer rounds than tuple-based MPC(ε) algorithms are allowed
    /// at the AGM load target.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidPlan`] if the strategy claims fewer rounds
    /// than the lower bound allows; propagated LP errors.
    pub fn verify_round_floor(&self) -> Result<usize> {
        let floor = self.round_floor()?;
        if self.worst_case_rounds() < floor {
            return Err(CoreError::InvalidPlan(format!(
                "worst-case optimal strategy claims {} round(s) but the lower bound at \
                 ε = 1 − 1/ρ* is {floor}",
                self.worst_case_rounds()
            )));
        }
        Ok(floor)
    }

    /// The pattern owning global server `s`, if any (servers beyond the
    /// last grid only stage).
    pub fn pattern_of_server(&self, s: usize) -> Option<usize> {
        self.patterns.iter().position(|pat| pat.owns_server(s))
    }

    /// The indices of the heavy patterns (≥ 1) whose induced pattern on
    /// `atom` equals `phi` — the grids one tuple with pattern `phi` must
    /// reach in the broadcast-join round.
    pub fn heavy_patterns_for(&self, atom: &Atom, phi: &BTreeSet<VarId>) -> Vec<usize> {
        let vars = atom.distinct_vars();
        self.patterns
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, pat)| {
                pat.heavy_vars.intersection(&vars).copied().collect::<BTreeSet<_>>() == *phi
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Degree-threshold heavy detection: value `v` is heavy at `x` when some
/// atom containing `x` has more than `|R| / p_x` tuples carrying `v` at
/// an occurrence of `x` (estimated frequency under sampled statistics).
/// The per-column histograms are read off the shared [`DbStatistics`] —
/// collected once per database, not once per `(atom, position)`.
fn detect_heavy(query: &Query, stats: &DbStatistics, base: &ShareAllocation) -> HeavyValues {
    let mut values: Vec<BTreeSet<Value>> = vec![BTreeSet::new(); query.num_vars()];
    for atom in query.atoms() {
        let Some(rs) = stats.relation(&atom.name) else { continue };
        let total = rs.total() as f64;
        for (pos, var) in atom.vars.iter().enumerate() {
            let share = base.share(*var).max(1) as f64;
            if share <= 1.0 {
                continue;
            }
            for (v, est) in rs.column_estimates(pos) {
                if est * share > total {
                    values[var.0].insert(v);
                }
            }
        }
    }
    HeavyValues { values: values.into_iter().map(|s| s.into_iter().collect()).collect() }
}

/// One scan of the input: per-atom tuple counts keyed by heavy pattern,
/// plus the list of *active* heavy patterns — subsets `H` of the heavy
/// variables for which **every** atom has at least one compatible tuple
/// (otherwise the residual join is empty and `H` needs no grid).
///
/// Under sampled statistics the scan walks only the sampled tuples
/// (scaled counts, minimum 1 per observed pattern) and activity is
/// decided *conservatively*: every non-empty subset of the heavy
/// variables is active, because a sample can witness a pattern but never
/// certify its absence — and a tuple routed at a missing grid would be
/// dropped, losing answers.
#[allow(clippy::type_complexity)]
fn scan_patterns(
    query: &Query,
    db: &Database,
    heavy: &HeavyValues,
    stats: &DbStatistics,
) -> (Vec<BTreeMap<BTreeSet<VarId>, u64>>, Vec<BTreeSet<VarId>>) {
    let counts: Vec<BTreeMap<BTreeSet<VarId>, u64>> = query
        .atoms()
        .iter()
        .map(|atom| {
            let mut m: BTreeMap<BTreeSet<VarId>, u64> = BTreeMap::new();
            match stats.relation(&atom.name).and_then(RelationStats::sample) {
                Some((tuples, scale)) => {
                    for t in tuples {
                        if let Some(phi) = heavy.pattern_of(atom, t) {
                            *m.entry(phi).or_insert(0) += 1;
                        }
                    }
                    for c in m.values_mut() {
                        *c = (*c as f64 * scale).round().max(1.0) as u64;
                    }
                }
                None => {
                    if let Ok(rel) = db.relation(&atom.name) {
                        for t in rel.iter() {
                            if let Some(phi) = heavy.pattern_of(atom, t) {
                                *m.entry(phi).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }
            m
        })
        .collect();

    let capable = heavy.heavy_vars();
    let mut active = Vec::new();
    for mask in 1usize..(1 << capable.len()) {
        let h: BTreeSet<VarId> = capable
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| *v)
            .collect();
        let feasible = stats.is_sampled()
            || query.atoms().iter().zip(&counts).all(|(atom, c)| {
                let induced: BTreeSet<VarId> =
                    atom.distinct_vars().intersection(&h).copied().collect();
                c.get(&induced).copied().unwrap_or(0) > 0
            });
        if feasible {
            active.push(h);
        }
    }
    (counts, active)
}

/// Total tuples whose pattern mentions `var` — the demotion severity.
fn heavy_mass(query: &Query, counts: &[BTreeMap<BTreeSet<VarId>, u64>], var: VarId) -> u64 {
    query
        .atoms()
        .iter()
        .zip(counts)
        .map(|(_, c)| c.iter().filter(|(phi, _)| phi.contains(&var)).map(|(_, n)| *n).sum::<u64>())
        .sum()
}

/// Carve `p` servers into groups proportional to `weights`, at least one
/// server per group; leftovers go to the group with the highest
/// weight-per-server.
fn proportional_groups(p: usize, weights: &[u64]) -> Vec<usize> {
    let m = weights.len();
    debug_assert!(m <= p, "caller guarantees one server per group");
    let total: u64 = weights.iter().sum();
    let mut sizes: Vec<usize> = if total == 0 {
        vec![p / m; m]
    } else {
        weights.iter().map(|w| (p as f64 * *w as f64 / total as f64).floor() as usize).collect()
    };
    for s in &mut sizes {
        *s = (*s).max(1);
    }
    while sizes.iter().sum::<usize>() > p {
        let (idx, _) = sizes
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 1)
            .max_by_key(|(_, s)| **s)
            .expect("sum > p ≥ m implies some group > 1");
        sizes[idx] -= 1;
    }
    while sizes.iter().sum::<usize>() < p {
        let (idx, _) = weights
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| {
                let la = **a as f64 / sizes[*i] as f64;
                let lb = **b as f64 / sizes[*j] as f64;
                la.partial_cmp(&lb).expect("finite").then(j.cmp(i))
            })
            .expect("at least one group");
        sizes[idx] += 1;
    }
    sizes
}

/// The residual query `q_H`: heavy variables deleted from every atom,
/// fully-heavy atoms dropped. `None` when every atom is fully heavy.
pub fn residual_query(q: &Query, heavy_vars: &BTreeSet<VarId>) -> Option<Query> {
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    for atom in q.atoms() {
        let light: Vec<String> = atom
            .vars
            .iter()
            .filter(|v| !heavy_vars.contains(v))
            .map(|v| q.var_names()[v.0].clone())
            .collect();
        if !light.is_empty() {
            atoms.push((atom.name.clone(), light));
        }
    }
    if atoms.is_empty() {
        return None;
    }
    let label: Vec<&str> = heavy_vars.iter().map(|v| q.var_names()[v.0].as_str()).collect();
    Query::new(format!("{}%{}", q.name(), label.join(",")), atoms).ok()
}

/// Cardinality-aware share search for one heavy pattern's grid: grow, one
/// unit at a time, the dimension whose increment most reduces the
/// estimated per-server load `Σ_j m_j / ∏_{x ∈ vars(R_j)} p_x`, subject
/// to the grid fitting the group and heavy dimensions never exceeding
/// their value count (a dimension wider than its domain is wasted).
fn capped_greedy_shares(
    q: &Query,
    heavy_vars: &BTreeSet<VarId>,
    heavy: &HeavyValues,
    atom_tuples: &[u64],
    group: usize,
) -> Vec<usize> {
    let estimated = |shares: &[usize]| -> f64 {
        q.atoms()
            .iter()
            .zip(atom_tuples)
            .map(|(atom, m)| {
                let spread: usize = atom.distinct_vars().iter().map(|v| shares[v.0]).product();
                *m as f64 / spread as f64
            })
            .sum()
    };
    let cap = |v: usize| -> usize {
        if heavy_vars.contains(&VarId(v)) {
            heavy.count(VarId(v)).max(1)
        } else {
            usize::MAX
        }
    };
    let mut shares = vec![1usize; q.num_vars()];
    loop {
        let product: usize = shares.iter().product();
        let current = estimated(&shares);
        let mut best: Option<(usize, f64)> = None;
        for v in 0..shares.len() {
            if shares[v] + 1 > cap(v) || product / shares[v] * (shares[v] + 1) > group {
                continue;
            }
            shares[v] += 1;
            let load = estimated(&shares);
            shares[v] -= 1;
            if load < current && best.is_none_or(|(_, b)| load < b) {
                best = Some((v, load));
            }
        }
        match best {
            Some((v, _)) => shares[v] += 1,
            None => return shares,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_data::skew::{heavy_hitter_database, zipf_database};

    #[test]
    fn skew_free_input_collapses_to_the_light_hypercube() {
        let q = families::triangle();
        let db = matching_database(&q, 600, 7);
        let plan = WorstCaseOptimalPlan::build(&q, &db, 27).unwrap();
        assert_eq!(plan.patterns().len(), 1, "no heavy values on a matching");
        assert_eq!(plan.num_rounds(), 1);
        let light = &plan.patterns()[0];
        assert!(light.heavy_vars.is_empty());
        assert_eq!(light.shares, vec![3, 3, 3], "the cover-based p^(1/3) shares");
        assert_eq!(plan.staged_tuples(), 0);
    }

    #[test]
    fn heavy_hitter_triangle_activates_heavy_patterns_on_disjoint_groups() {
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 1000, 2000, 0.5, 11);
        let plan = WorstCaseOptimalPlan::build(&q, &db, 32).unwrap();
        assert!(plan.patterns().len() > 1, "half of every relation shares one key");
        assert_eq!(plan.num_rounds(), 2);
        assert!(plan.staged_tuples() > 0);
        // Grids are disjoint and fit.
        let mut end = 0usize;
        for pat in plan.patterns() {
            assert!(pat.offset >= end);
            assert!(pat.cells() <= pat.group_size);
            end = pat.offset + pat.cells();
        }
        assert!(end <= 32);
        // Heavy dimensions never exceed their value count.
        for pat in plan.patterns().iter().skip(1) {
            for v in &pat.heavy_vars {
                assert!(pat.shares[v.0] <= plan.heavy().count(*v).max(1));
            }
            // Only the all-heavy configuration leaves no residual query.
            assert_eq!(pat.residual_rho_star.is_none(), pat.heavy_vars.len() == q.num_vars());
        }
    }

    #[test]
    fn round_floor_verification_holds_for_the_triangle() {
        // ε_eff = 1 − 1/ρ* = 1/3 = ε* for C3: over matchings one round
        // suffices at that ε, so the floor is 1 and the strategy's 2
        // worst-case rounds sit above it. Below ε* the same machinery
        // certifies ≥ 2 rounds — the regime the extra round pays for.
        let q = families::triangle();
        let db = heavy_hitter_database(&q, 500, 1000, 0.5, 3);
        let plan = WorstCaseOptimalPlan::build(&q, &db, 16).unwrap();
        assert_eq!(plan.worst_case_rounds(), 2);
        assert_eq!(plan.verify_round_floor().unwrap(), 1);
        assert_eq!(round_lower_bound(&q, Rational::ZERO).unwrap(), 2);
    }

    #[test]
    fn demotion_keeps_one_group_per_server() {
        let q = families::cycle(4);
        let db = zipf_database(&q, 400, 1200, 1.6, 5);
        // p = 2: at most the light grid plus one heavy group.
        let plan = WorstCaseOptimalPlan::build(&q, &db, 2).unwrap();
        assert!(plan.patterns().len() <= 2);
        let used: usize = plan.patterns().iter().map(WcoPattern::cells).sum();
        assert!(used <= 2);
    }

    #[test]
    fn residual_query_deletes_heavy_positions() {
        let q = families::triangle();
        let x1 = q.var_id("x1").unwrap();
        let rq = residual_query(&q, &[x1].into_iter().collect()).unwrap();
        assert_eq!(rq.num_atoms(), 3);
        // S1(x1,x2) and S3(x3,x1) lose a position; S2(x2,x3) is intact.
        let total: usize = rq.atoms().iter().map(Atom::arity).sum();
        assert_eq!(total, 4);
        let all: BTreeSet<VarId> = q.var_ids().collect();
        assert!(residual_query(&q, &all).is_none());
    }

    #[test]
    fn rejects_zero_servers() {
        let q = families::triangle();
        let db = matching_database(&q, 50, 1);
        assert!(WorstCaseOptimalPlan::build(&q, &db, 0).is_err());
    }

    #[test]
    fn exact_stats_plan_is_the_default_plan() {
        // `build` is `build_with_stats` under exact statistics: same heavy
        // lists, same grids, same carving — for skewed and skew-free data.
        let q = families::triangle();
        for db in [matching_database(&q, 600, 7), heavy_hitter_database(&q, 1000, 2000, 0.5, 11)] {
            let stats = DbStatistics::collect(&db, StatsMode::Exact);
            let a = WorstCaseOptimalPlan::build(&q, &db, 32).unwrap();
            let b = WorstCaseOptimalPlan::build_with_stats(&q, &db, 32, &stats).unwrap();
            assert_eq!(a.patterns().len(), b.patterns().len());
            for (pa, pb) in a.patterns().iter().zip(b.patterns()) {
                assert_eq!(pa.heavy_vars, pb.heavy_vars);
                assert_eq!(pa.shares, pb.shares);
                assert_eq!(pa.offset, pb.offset);
                assert_eq!(pa.group_size, pb.group_size);
            }
            assert_eq!(a.staged_tuples(), b.staged_tuples());
            for v in q.var_ids() {
                assert_eq!(a.heavy().of(v), b.heavy().of(v));
            }
        }
    }

    #[test]
    fn sampled_plans_are_valid_and_sublinear() {
        // Property wall over seeds: a sampled plan's grids must be
        // disjoint and fit `p`, its heavy set must be a subset story the
        // sample can defend, and — crucially — every non-empty subset of
        // its heavy variables must own a grid (the conservative activity
        // rule that makes sampled routing lossless).
        let q = families::triangle();
        for seed in 0..5u64 {
            let db = heavy_hitter_database(&q, 1500, 3000, 0.4, 50 + seed);
            let mode = StatsMode::Sampled { budget: 500, seed };
            let stats = DbStatistics::collect(&db, mode);
            let plan = WorstCaseOptimalPlan::build_with_stats(&q, &db, 32, &stats).unwrap();

            let mut end = 0usize;
            for pat in plan.patterns() {
                assert!(pat.offset >= end);
                assert!(pat.cells() <= pat.group_size);
                end = pat.offset + pat.cells();
            }
            assert!(end <= 32);

            let capable = plan.heavy().heavy_vars();
            if !capable.is_empty() {
                for mask in 1usize..(1 << capable.len()) {
                    let h: BTreeSet<VarId> = capable
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, v)| *v)
                        .collect();
                    assert!(
                        plan.patterns().iter().skip(1).any(|p| p.heavy_vars == h),
                        "seed {seed}: sampled plan misses active pattern {h:?}"
                    );
                }
            }
            // Planning read only the sample, not the relations.
            assert_eq!(stats.scanned_tuples(), 3 * 500);
        }
    }
}
