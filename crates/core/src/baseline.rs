//! Baseline one-round algorithms for load comparisons.
//!
//! The paper motivates the HyperCube shuffle by contrasting it with the two
//! obvious strategies (Section 1, the drug-interaction example):
//!
//! * **Broadcast** — replicate the whole input to every server
//!   (replication rate `p`, always correct, always over budget for ε < 1);
//! * **Single-key shuffle** — hash-partition every relation on one shared
//!   variable (replication rate 1, but only *correct* when some variable
//!   occurs in every atom, i.e. exactly when `τ* = 1`, Corollary 3.10).
//!
//! Both are expressed as [`MpcProgram`]s so the benchmark harness measures
//! their loads with the same accounting as the HyperCube programs.

use mpc_cq::{Query, VarId};
use mpc_sim::program::hash_value;
use mpc_sim::{MpcProgram, Routed, ServerState};
use mpc_storage::Relation;

pub use mpc_sim::program::BroadcastProgram;

use crate::error::CoreError;
use crate::Result;

/// One-round shuffle join that hash-partitions every relation on a single
/// variable shared by all atoms.
#[derive(Debug, Clone)]
pub struct SingleKeyShuffleProgram {
    query: Query,
    key: VarId,
    seed: u64,
}

impl SingleKeyShuffleProgram {
    /// Build the program, choosing (the first) variable that occurs in
    /// every atom as the partitioning key.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unsupported`] if no variable occurs in every
    /// atom (the strategy would be incorrect; use HyperCube instead).
    pub fn new(query: &Query, seed: u64) -> Result<Self> {
        let key = query
            .var_ids()
            .find(|v| query.atoms().iter().all(|a| a.vars.contains(v)))
            .ok_or_else(|| {
                CoreError::Unsupported(format!(
                    "{} has no variable shared by all atoms; single-key shuffle would be incorrect",
                    query.name()
                ))
            })?;
        Ok(SingleKeyShuffleProgram { query: query.clone(), key, seed })
    }

    /// Build the program with an explicit key variable (must occur in every
    /// atom).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unsupported`] if the variable is missing from
    /// some atom.
    pub fn with_key(query: &Query, key: &str, seed: u64) -> Result<Self> {
        let key = query.var_id(key).ok_or_else(|| {
            CoreError::Unsupported(format!("{key} is not a variable of {}", query.name()))
        })?;
        if !query.atoms().iter().all(|a| a.vars.contains(&key)) {
            return Err(CoreError::Unsupported(format!(
                "variable {} does not occur in every atom of {}",
                query.var_name(key).unwrap_or("?"),
                query.name()
            )));
        }
        Ok(SingleKeyShuffleProgram { query: query.clone(), key, seed })
    }

    /// The partitioning variable.
    pub fn key(&self) -> VarId {
        self.key
    }
}

impl MpcProgram for SingleKeyShuffleProgram {
    fn num_rounds(&self) -> usize {
        1
    }

    fn route_input(&self, relation: &Relation, p: usize) -> mpc_sim::Result<Vec<Routed>> {
        let Some((_, atom)) = self.query.atom_by_name(relation.name()) else {
            return Ok(Vec::new());
        };
        let position = atom
            .vars
            .iter()
            .position(|v| *v == self.key)
            .expect("key occurs in every atom by construction");
        Ok(relation
            .iter()
            .map(|t| {
                let dest = hash_value(self.seed, t.values()[position], p);
                Routed::new(relation.name(), t.clone(), vec![dest])
            })
            .collect())
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        _state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        Ok(Vec::new())
    }

    fn output(&self, _server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        for atom in self.query.atoms() {
            if state.relation(&atom.name).is_none() {
                return Ok(Relation::empty(self.query.name(), self.query.num_vars()));
            }
        }
        let db = state.as_database();
        Ok(mpc_storage::join::evaluate(&self.query, &db)?)
    }

    fn output_name(&self) -> String {
        self.query.name().to_string()
    }

    fn output_arity(&self) -> usize {
        self.query.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_sim::{Cluster, MpcConfig};
    use mpc_storage::join::evaluate;

    #[test]
    fn single_key_shuffle_correct_for_star_queries() {
        let q = families::star(3);
        let db = matching_database(&q, 800, 2);
        let program = SingleKeyShuffleProgram::new(&q, 7).unwrap();
        assert_eq!(q.var_name(program.key()).unwrap(), "z");
        let cluster = Cluster::new(MpcConfig::new(16, 0.0)).unwrap();
        let result = cluster.run(&program, &db).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(result.output.same_tuples(&expected));
        assert!((result.rounds[0].replication_rate - 1.0).abs() < 1e-9);
        assert!(result.within_budget());
    }

    #[test]
    fn single_key_shuffle_correct_for_l2() {
        let q = families::chain(2);
        let db = matching_database(&q, 500, 4);
        let program = SingleKeyShuffleProgram::with_key(&q, "x1", 3).unwrap();
        let cluster = Cluster::new(MpcConfig::new(8, 0.0)).unwrap();
        let result = cluster.run(&program, &db).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(result.output.same_tuples(&expected));
    }

    #[test]
    fn rejected_for_queries_without_shared_variable() {
        assert!(SingleKeyShuffleProgram::new(&families::cycle(3), 1).is_err());
        assert!(SingleKeyShuffleProgram::new(&families::chain(3), 1).is_err());
        assert!(SingleKeyShuffleProgram::with_key(&families::chain(3), "x1", 1).is_err());
        assert!(SingleKeyShuffleProgram::with_key(&families::chain(2), "nope", 1).is_err());
    }

    #[test]
    fn broadcast_is_correct_but_over_budget() {
        let q = families::cycle(3);
        let db = matching_database(&q, 300, 8);
        let cluster = Cluster::new(MpcConfig::new(8, 1.0 / 3.0)).unwrap();
        let result = cluster.run(&BroadcastProgram::new(q.clone()), &db).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(result.output.same_tuples(&expected));
        // Replication p is far beyond the p^ε allowed at ε = 1/3.
        assert!(!result.within_budget());
    }
}
