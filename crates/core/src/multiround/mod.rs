//! Multi-round query evaluation in the tuple-based MPC model (Section 4).
//!
//! * [`planner`] — constructs round-by-round query plans whose operators
//!   are one-round (`Γ¹_ε`) subqueries, realising the classes `Γ^r_ε` of
//!   Section 4.1 (Example 4.2's bushy plans for chains, the two-round plan
//!   for `SP_k`, and the radius-based bound of Lemma 4.3).
//! * [`executor`] — turns a plan into an [`mpc_sim::MpcProgram`]: one
//!   HyperCube shuffle per operator per round, intermediate views shipped
//!   as join tuples (exactly what the tuple-based model allows).
//! * [`lower_bound`] — ε-good sets and (ε,r)-plans (Definition 4.4) and the
//!   round lower bounds of Theorem 4.5 / Corollary 4.8 / Lemma 4.9.
//! * [`load`] — the journal version's refined multi-round analysis:
//!   per-round per-server load predictions for a plan
//!   ([`MultiRoundPlan::predict_loads`]) and the predicted-vs-simulated
//!   comparison against a [`mpc_sim::RunResult`].

pub mod executor;
pub mod load;
pub mod lower_bound;
pub mod planner;

pub use executor::{MultiRound, MultiRoundOutcome, PlanProgram};
pub use load::{OperatorLoadPrediction, PlanLoadPrediction, RoundComparison, RoundLoadPrediction};
pub use lower_bound::{
    find_er_plan, is_epsilon_good, round_lower_bound, round_lower_bound_via_plan,
};
pub use planner::{MultiRoundPlan, Operator, PlanLevel};
