//! Multi-round plan construction (`Γ^r_ε`, Section 4.1).
//!
//! A query is in `Γ^{r}_ε` if it has a query plan of depth `r` in which
//! every operator is a connected query computable in one round at space
//! exponent `ε` (i.e. an element of `Γ¹_ε`, equivalently
//! `τ* ≤ 1/(1−ε)`). The planner below builds such plans greedily, level by
//! level: the atoms of the current query are partitioned into connected
//! groups that each stay inside `Γ¹_ε`; every group of two or more atoms
//! becomes a one-round *operator* producing an intermediate view, and the
//! next level joins the views (plus any pass-through atoms). Because any
//! two atoms sharing a variable always form a `Γ¹_ε` query, the number of
//! atoms strictly decreases at every level and the construction terminates.
//!
//! On the paper's examples the plans coincide with the optimal ones:
//! `L_16` at ε = 1/2 becomes two rounds of `L_4` operators (Example 4.2);
//! `SP_k` at ε = 0 becomes the two-round plan of Section 4.1; `L_k` at
//! ε = 0 becomes the `⌈log₂ k⌉`-deep bushy binary-join tree of Table 2.

use serde::Serialize;

use mpc_cq::{AtomId, Query};
use mpc_lp::Rational;

use crate::error::CoreError;
use crate::space_exponent::{gamma_one_contains, k_epsilon};
use crate::Result;

/// One one-round operator of a plan: a connected query in `Γ¹_ε` over the
/// relation names of its level (base relations and/or earlier views),
/// producing a view named [`Operator::view_name`] whose columns are the
/// operator query's variables in order.
#[derive(Debug, Clone, Serialize)]
pub struct Operator {
    /// Name of the produced view.
    pub view_name: String,
    /// The operator query (its name equals `view_name`).
    pub query: Query,
}

/// One level (round) of a plan.
#[derive(Debug, Clone, Serialize)]
pub struct PlanLevel {
    /// The operators evaluated in this round (in parallel).
    pub operators: Vec<Operator>,
}

/// A multi-round plan for a connected query.
#[derive(Debug, Clone, Serialize)]
pub struct MultiRoundPlan {
    original: Query,
    epsilon: Rational,
    levels: Vec<PlanLevel>,
}

impl MultiRoundPlan {
    /// Build a plan for `q` at space exponent `epsilon`.
    ///
    /// ```
    /// use mpc_core::multiround::planner::MultiRoundPlan;
    /// use mpc_lp::Rational;
    ///
    /// // Example 4.2 of the paper: at ε = 1/2 the chain L16 is answered in
    /// // two rounds of L4 operators (L4 has τ* = 2 = 1/(1−ε)).
    /// let q = mpc_cq::families::chain(16);
    /// let plan = MultiRoundPlan::build(&q, Rational::new(1, 2)).unwrap();
    /// plan.validate().unwrap();
    /// assert_eq!(plan.num_rounds(), 2);
    ///
    /// // At ε = 0 every operator is a binary join, giving the
    /// // ⌈log₂ 16⌉ = 4-deep bushy tree of Table 2.
    /// let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
    /// assert_eq!(plan.num_rounds(), 4);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unsupported`] for disconnected queries and
    /// propagates LP errors.
    pub fn build(q: &Query, epsilon: Rational) -> Result<MultiRoundPlan> {
        if !q.is_connected() {
            return Err(CoreError::Unsupported(format!(
                "{} is disconnected; multi-round planning requires a connected query",
                q.name()
            )));
        }
        if epsilon.is_negative() || epsilon >= Rational::ONE {
            return Err(CoreError::InvalidPlan(format!("ε must lie in [0, 1), got {epsilon}")));
        }

        let mut levels: Vec<PlanLevel> = Vec::new();
        let mut current = q.clone();
        let mut level_no = 0usize;

        loop {
            if gamma_one_contains(&current, epsilon)? {
                // Final level: a single operator computing the remaining query.
                let view_name = format!("{}__final", q.name());
                let op_query = current.with_name(view_name.clone());
                levels.push(PlanLevel { operators: vec![Operator { view_name, query: op_query }] });
                break;
            }

            level_no += 1;
            let groups = greedy_partition(&current, epsilon)?;
            let mut operators = Vec::new();
            let mut next_atoms: Vec<(String, Vec<String>)> = Vec::new();
            for (gi, group) in groups.iter().enumerate() {
                if group.len() == 1 {
                    // Pass-through: the atom survives unchanged into the
                    // next level.
                    let atom = current.atom(group[0])?;
                    let vars = atom
                        .vars
                        .iter()
                        .map(|v| current.var_name(*v).map(str::to_string))
                        .collect::<std::result::Result<Vec<_>, _>>()?;
                    next_atoms.push((atom.name.clone(), vars));
                } else {
                    let view_name = format!("V{level_no}_{gi}");
                    let sub = current.induced_subquery(group)?.with_name(view_name.clone());
                    next_atoms.push((view_name.clone(), sub.var_names().to_vec()));
                    operators.push(Operator { view_name, query: sub });
                }
            }

            if operators.is_empty() {
                return Err(CoreError::InvalidPlan(format!(
                    "planner made no progress on {} at ε = {epsilon}",
                    current.name()
                )));
            }
            levels.push(PlanLevel { operators });
            current = Query::new(format!("{}__lvl{level_no}", q.name()), next_atoms)?;
        }

        Ok(MultiRoundPlan { original: q.clone(), epsilon, levels })
    }

    /// The query this plan computes.
    pub fn original(&self) -> &Query {
        &self.original
    }

    /// The space exponent the plan was built for.
    pub fn epsilon(&self) -> Rational {
        self.epsilon
    }

    /// The plan levels, one per round.
    pub fn levels(&self) -> &[PlanLevel] {
        &self.levels
    }

    /// Number of communication rounds (= plan depth).
    pub fn num_rounds(&self) -> usize {
        self.levels.len()
    }

    /// The final operator (the one producing the query answer).
    pub fn final_operator(&self) -> &Operator {
        &self.levels.last().expect("plans have at least one level").operators[0]
    }

    /// Total number of operators across all levels.
    pub fn num_operators(&self) -> usize {
        self.levels.iter().map(|l| l.operators.len()).sum()
    }

    /// Validate the plan: every operator must be connected and in `Γ¹_ε`,
    /// and the final operator must bind every variable of the original
    /// query.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        for (li, level) in self.levels.iter().enumerate() {
            for op in &level.operators {
                if !op.query.is_connected() {
                    return Err(CoreError::InvalidPlan(format!(
                        "operator {} in level {} is disconnected",
                        op.view_name, li
                    )));
                }
                if !gamma_one_contains(&op.query, self.epsilon)? {
                    return Err(CoreError::InvalidPlan(format!(
                        "operator {} in level {} is not one-round computable at ε = {}",
                        op.view_name, li, self.epsilon
                    )));
                }
            }
        }
        let final_vars = self.final_operator().query.var_names();
        for v in self.original.var_names() {
            if !final_vars.contains(v) {
                return Err(CoreError::InvalidPlan(format!(
                    "final operator does not bind variable {v}"
                )));
            }
        }
        Ok(())
    }
}

/// Partition the atoms of `q` into connected groups, each inside `Γ¹_ε`,
/// greedily absorbing adjacent atoms.
fn greedy_partition(q: &Query, epsilon: Rational) -> Result<Vec<Vec<AtomId>>> {
    let mut unassigned: Vec<AtomId> = q.atom_ids().collect();
    let mut groups: Vec<Vec<AtomId>> = Vec::new();

    while !unassigned.is_empty() {
        let seed = unassigned.remove(0);
        let mut group = vec![seed];
        loop {
            let mut grew = false;
            let mut idx = 0;
            while idx < unassigned.len() {
                let candidate = unassigned[idx];
                let mut tentative = group.clone();
                tentative.push(candidate);
                if q.atoms_connected(&tentative)
                    && gamma_one_contains(&q.induced_subquery(&tentative)?, epsilon)?
                {
                    group.push(candidate);
                    unassigned.remove(idx);
                    grew = true;
                } else {
                    idx += 1;
                }
            }
            if !grew {
                break;
            }
        }
        group.sort();
        groups.push(group);
    }
    Ok(groups)
}

/// The analytic round upper bound of Lemma 4.3:
/// `⌈log_{kε}(rad(q))⌉ + 1` for tree-like queries and
/// `⌈log_{kε}(rad(q) + 1)⌉ + 1` for general connected queries
/// (and simply 1 when the query is already in `Γ¹_ε`).
///
/// # Errors
///
/// Returns [`CoreError::Unsupported`] for disconnected queries.
pub fn round_upper_bound(q: &Query, epsilon: Rational) -> Result<usize> {
    if !q.is_connected() {
        return Err(CoreError::Unsupported("radius bound needs a connected query".to_string()));
    }
    if gamma_one_contains(q, epsilon)? {
        return Ok(1);
    }
    let rad = q.radius().expect("connected query has a radius");
    let base = k_epsilon(epsilon);
    let target = if q.is_tree_like() { rad } else { rad + 1 };
    Ok(ceil_log(target.max(1), base.max(2)) + 1)
}

/// `⌈log_base(x)⌉` for integers (0 when `x ≤ 1`).
pub(crate) fn ceil_log(x: usize, base: usize) -> usize {
    debug_assert!(base >= 2);
    let mut value = 1usize;
    let mut steps = 0usize;
    while value < x {
        value = value.saturating_mul(base);
        steps += 1;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::{families, Query};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn ceil_log_values() {
        assert_eq!(ceil_log(1, 2), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(3, 2), 2);
        assert_eq!(ceil_log(16, 2), 4);
        assert_eq!(ceil_log(17, 2), 5);
        assert_eq!(ceil_log(16, 4), 2);
        assert_eq!(ceil_log(5, 4), 2);
    }

    #[test]
    fn chains_at_epsilon_zero_take_log_k_rounds() {
        // Table 2: Lk needs ⌈log₂ k⌉ rounds at ε = 0.
        for (k, expected) in [(2usize, 1usize), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (16, 4)] {
            let plan = MultiRoundPlan::build(&families::chain(k), Rational::ZERO).unwrap();
            assert_eq!(plan.num_rounds(), expected, "L{k}");
            plan.validate().unwrap();
        }
    }

    #[test]
    fn example_4_2_l16_at_half_takes_two_rounds() {
        let plan = MultiRoundPlan::build(&families::chain(16), r(1, 2)).unwrap();
        assert_eq!(plan.num_rounds(), 2);
        // First level: four L4 operators.
        assert_eq!(plan.levels()[0].operators.len(), 4);
        for op in &plan.levels()[0].operators {
            assert_eq!(op.query.num_atoms(), 4);
        }
        plan.validate().unwrap();
    }

    #[test]
    fn chain_round_counts_match_log_base_k_epsilon() {
        // Lk at exponent ε takes ⌈log_{kε} k⌉ rounds.
        for (k, eps, expected) in [
            (16usize, r(1, 2), 2usize),
            (8, r(1, 2), 2),
            (4, r(1, 2), 1),
            (5, r(1, 2), 2),
            (27, r(2, 3), 2),
            (36, r(2, 3), 2),
            (37, r(2, 3), 3),
        ] {
            let plan = MultiRoundPlan::build(&families::chain(k), eps).unwrap();
            assert_eq!(plan.num_rounds(), expected, "L{k} at ε = {eps}");
        }
    }

    #[test]
    fn spoke_takes_two_rounds_at_epsilon_zero() {
        // SPk: one round per Section 4.1 is impossible (τ* = k); the
        // two-round plan joins the Ri-Si pairs first, then everything on z.
        for k in 2..=4 {
            let plan = MultiRoundPlan::build(&families::spoke(k), Rational::ZERO).unwrap();
            assert_eq!(plan.num_rounds(), 2, "SP{k}");
            assert_eq!(plan.levels()[0].operators.len(), k);
            plan.validate().unwrap();
        }
    }

    #[test]
    fn star_and_l2_take_one_round() {
        for q in [families::star(5), families::chain(2), families::chain(1)] {
            let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
            assert_eq!(plan.num_rounds(), 1, "{}", q.name());
            plan.validate().unwrap();
        }
    }

    #[test]
    fn cycles_at_epsilon_zero() {
        // Ck at ε = 0 takes about ⌈log₂ k⌉ rounds (Table 2).
        for (k, expected) in [(3usize, 2usize), (4, 2), (6, 3), (8, 3)] {
            let plan = MultiRoundPlan::build(&families::cycle(k), Rational::ZERO).unwrap();
            assert_eq!(plan.num_rounds(), expected, "C{k}");
            plan.validate().unwrap();
        }
    }

    #[test]
    fn triangle_at_its_space_exponent_is_one_round() {
        let plan = MultiRoundPlan::build(&families::cycle(3), r(1, 3)).unwrap();
        assert_eq!(plan.num_rounds(), 1);
    }

    #[test]
    fn final_operator_binds_all_variables() {
        for q in [families::chain(7), families::cycle(5), families::spoke(3)] {
            let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
            let final_vars = plan.final_operator().query.var_names();
            for v in q.var_names() {
                assert!(final_vars.contains(v), "{} missing {v}", q.name());
            }
        }
    }

    #[test]
    fn disconnected_queries_are_rejected() {
        let q = Query::new("q", vec![("R", vec!["x"]), ("S", vec!["y"])]).unwrap();
        assert!(MultiRoundPlan::build(&q, Rational::ZERO).is_err());
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let q = families::chain(3);
        assert!(MultiRoundPlan::build(&q, Rational::ONE).is_err());
        assert!(MultiRoundPlan::build(&q, r(-1, 2)).is_err());
    }

    #[test]
    fn lemma_4_3_upper_bound() {
        // Tree-like: ⌈log_kε rad⌉ + 1.
        assert_eq!(round_upper_bound(&families::chain(8), Rational::ZERO).unwrap(), 3);
        // For L16 at ε = 1/2 the radius-based bound gives 3; the planner's
        // bushy plan (Example 4.2) does better with 2 rounds.
        assert_eq!(round_upper_bound(&families::chain(16), r(1, 2)).unwrap(), 3);
        // Already one-round queries report 1.
        assert_eq!(round_upper_bound(&families::star(4), Rational::ZERO).unwrap(), 1);
        // Non-tree-like queries use rad + 1.
        assert_eq!(round_upper_bound(&families::cycle(6), Rational::ZERO).unwrap(), 3);
        // Planner depth never exceeds... the greedy plan is compared
        // against the analytic bound for chains, where both are exact.
        for k in [4usize, 8, 16] {
            let plan = MultiRoundPlan::build(&families::chain(k), Rational::ZERO).unwrap();
            assert!(
                plan.num_rounds()
                    <= round_upper_bound(&families::chain(k), Rational::ZERO).unwrap()
            );
        }
    }

    #[test]
    fn plan_operators_are_all_in_gamma_one() {
        for (q, eps) in [
            (families::chain(10), Rational::ZERO),
            (families::chain(12), r(1, 2)),
            (families::cycle(7), Rational::ZERO),
            (families::spoke(4), Rational::ZERO),
            (families::binomial(4, 2).unwrap(), Rational::ZERO),
        ] {
            let plan = MultiRoundPlan::build(&q, eps).unwrap();
            plan.validate().unwrap();
            for level in plan.levels() {
                for op in &level.operators {
                    assert!(gamma_one_contains(&op.query, eps).unwrap());
                }
            }
        }
    }
}
