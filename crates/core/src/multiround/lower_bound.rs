//! Round lower bounds for the tuple-based MPC model (Section 4.2).
//!
//! The paper's multi-round lower bounds are certified by **(ε,r)-plans**
//! (Definition 4.4): decreasing atom sets `atoms(q) ⊃ M₁ ⊃ ⋯ ⊃ M_r` where
//! each `M_{j+1}` is *ε-good* for the contraction `q / M̄_j` and the final
//! contraction is still not one-round computable. An ε-good set `M` is one
//! where (1) no one-round-computable (`Γ¹_ε`) connected subquery contains
//! two atoms of `M`, and (2) the complement `M̄` has characteristic 0 (its
//! connected components are tree-like). Theorem 4.5 turns such a plan into
//! a failure probability for every tuple-based algorithm with too few
//! rounds.
//!
//! This module implements
//!
//! * [`is_epsilon_good`] — the exact check of Definition 4.4,
//! * [`find_er_plan`] — a greedy construction of (ε,r)-plans that recovers
//!   the paper's plans for chains and cycles,
//! * [`round_lower_bound_via_plan`] — the bound implied by the constructed
//!   plan, and
//! * [`round_lower_bound`] — the closed-form bounds
//!   `⌈log_{kε} diam(q)⌉` for tree-like queries (Corollary 4.8) and
//!   `⌈log_{kε}(k/(mε+1))⌉ + 1` for cycles (Lemma 4.9), falling back to the
//!   plan-based bound otherwise.

use std::collections::BTreeSet;

use mpc_cq::{AtomId, Query};
use mpc_lp::Rational;

use crate::error::CoreError;
use crate::multiround::planner::ceil_log;
use crate::space_exponent::{gamma_one_contains, k_epsilon, m_epsilon};
use crate::Result;

/// Maximum number of atoms for which the exponential subquery enumeration
/// used by the goodness checks is allowed.
const MAX_ATOMS_FOR_ENUMERATION: usize = 18;

/// Check whether `m` is an ε-good set of atoms for the (connected) query
/// `q` (Definition 4.4):
///
/// 1. every connected subquery of `q` belonging to `Γ¹_ε` contains at most
///    one atom of `m`, and
/// 2. `χ(M̄) = 0` where `M̄ = atoms(q) − m` (equivalently, every connected
///    component of `M̄` is tree-like). An empty complement vacuously
///    satisfies this.
///
/// # Errors
///
/// Propagates LP errors; refuses queries with more than 18 atoms (the check
/// enumerates connected subqueries).
pub fn is_epsilon_good(q: &Query, m: &[AtomId], epsilon: Rational) -> Result<bool> {
    if q.num_atoms() > MAX_ATOMS_FOR_ENUMERATION {
        return Err(CoreError::Unsupported(format!(
            "ε-goodness check enumerates connected subqueries; {} has too many atoms",
            q.name()
        )));
    }
    let m_set: BTreeSet<AtomId> = m.iter().copied().collect();

    // Condition 1.
    for subset in q.connected_subqueries() {
        let in_m = subset.iter().filter(|a| m_set.contains(a)).count();
        if in_m >= 2 {
            let sub = q.induced_subquery(&subset)?;
            if gamma_one_contains(&sub, epsilon)? {
                return Ok(false);
            }
        }
    }

    // Condition 2.
    let complement: Vec<AtomId> = q.complement_atoms(m);
    if !complement.is_empty() && q.characteristic_of_atoms(&complement)? != 0 {
        return Ok(false);
    }
    Ok(true)
}

/// Greedily find a large ε-good set for `q`: scan the atoms in order and
/// keep those that do not put two `M`-atoms inside any `Γ¹_ε` connected
/// subquery; finally verify the full Definition 4.4 conditions.
/// Returns `None` when the greedy choice fails the verification (the
/// goodness machinery is then inconclusive for this query).
///
/// # Errors
///
/// Propagates LP errors.
pub fn greedy_good_set(q: &Query, epsilon: Rational) -> Result<Option<Vec<AtomId>>> {
    if q.num_atoms() > MAX_ATOMS_FOR_ENUMERATION {
        return Err(CoreError::Unsupported(format!(
            "greedy ε-good search not supported for {} atoms",
            q.num_atoms()
        )));
    }
    // Pre-compute the atom sets of connected Γ¹_ε subqueries.
    let mut gamma_sets: Vec<BTreeSet<AtomId>> = Vec::new();
    for subset in q.connected_subqueries() {
        if subset.len() >= 2 {
            let sub = q.induced_subquery(&subset)?;
            if gamma_one_contains(&sub, epsilon)? {
                gamma_sets.push(subset.into_iter().collect());
            }
        }
    }

    let mut chosen: Vec<AtomId> = Vec::new();
    for a in q.atom_ids() {
        let conflict =
            gamma_sets.iter().any(|s| s.contains(&a) && chosen.iter().any(|c| s.contains(c)));
        if !conflict {
            chosen.push(a);
        }
    }

    if is_epsilon_good(q, &chosen, epsilon)? {
        Ok(Some(chosen))
    } else {
        Ok(None)
    }
}

/// A constructed (ε,r)-plan: the chain of contracted queries together with
/// the good set chosen at each step (expressed over the atoms of the
/// contracted query of that step).
#[derive(Debug, Clone)]
pub struct ErPlan {
    /// ε used for the construction.
    pub epsilon: Rational,
    /// The good set chosen at each step (over the *current* contracted
    /// query of that step, by atom name for readability).
    pub steps: Vec<Vec<String>>,
    /// The final contracted query (not in `Γ¹_ε`).
    pub final_query: Query,
}

impl ErPlan {
    /// The plan length `r`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no contraction step was possible.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Greedily construct an (ε,r)-plan for `q` (Definition 4.4), mirroring the
/// constructions of Lemma 4.6 (chains) and Lemma 4.9 (cycles): repeatedly
/// choose an ε-good set `M` of the current contracted query and contract
/// everything outside `M`, stopping while the contraction is still outside
/// `Γ¹_ε`.
///
/// Returns `None` when `q` itself is already in `Γ¹_ε` (no lower bound
/// beyond one round can be certified).
///
/// # Errors
///
/// Propagates LP errors.
pub fn find_er_plan(q: &Query, epsilon: Rational) -> Result<Option<ErPlan>> {
    if gamma_one_contains(q, epsilon)? {
        return Ok(None);
    }
    let mut steps: Vec<Vec<String>> = Vec::new();
    let mut current = q.clone();

    while let Some(good) = greedy_good_set(&current, epsilon)? {
        if good.len() < 2 {
            break;
        }
        let complement = current.complement_atoms(&good);
        if complement.is_empty() {
            break;
        }
        let contracted = match current.contract(&complement) {
            Ok(c) => c,
            Err(_) => break,
        };
        if gamma_one_contains(&contracted, epsilon)? {
            // Contracting further would violate condition (b) of the plan.
            break;
        }
        let names = good
            .iter()
            .map(|a| current.atom(*a).map(|at| at.name.clone()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        steps.push(names);
        current = contracted;
    }

    Ok(Some(ErPlan { epsilon, steps, final_query: current }))
}

/// The round lower bound implied by the greedy (ε,r)-plan: a plan of length
/// `r` makes `r + 1` rounds insufficient (Theorem 4.5), so at least
/// `r + 2` rounds are needed; a query outside `Γ¹_ε` with an empty plan
/// still needs at least 2 rounds, and a query inside `Γ¹_ε` needs 1.
///
/// # Errors
///
/// Propagates LP errors.
pub fn round_lower_bound_via_plan(q: &Query, epsilon: Rational) -> Result<usize> {
    match find_er_plan(q, epsilon)? {
        None => Ok(1),
        Some(plan) => Ok(plan.len() + 2),
    }
}

/// Detect whether `q` is (isomorphic to) the cycle query `C_k`: connected,
/// every atom binary with two distinct variables, every variable of degree
/// exactly 2 and `k = ℓ ≥ 3`. Returns `k` if so.
pub fn cycle_length(q: &Query) -> Option<usize> {
    if !q.is_connected() || q.num_atoms() < 3 || q.num_atoms() != q.num_vars() {
        return None;
    }
    for atom in q.atoms() {
        if atom.arity() != 2 || atom.distinct_vars().len() != 2 {
            return None;
        }
    }
    for v in q.var_ids() {
        if q.atoms_of_var(v).len() != 2 {
            return None;
        }
    }
    Some(q.num_atoms())
}

/// The round lower bound for a connected query in the tuple-based MPC(ε)
/// model:
///
/// * `1` if the query is in `Γ¹_ε`;
/// * tree-like queries: `⌈log_{kε} diam(q)⌉` (Corollary 4.8);
/// * cycles `C_k`: `⌈log_{kε}(k / (mε + 1))⌉ + 1` (Lemma 4.9);
/// * otherwise the plan-based bound of [`round_lower_bound_via_plan`]
///   (at least 2, since the query is not one-round computable).
///
/// # Errors
///
/// Propagates LP errors; requires a connected query.
pub fn round_lower_bound(q: &Query, epsilon: Rational) -> Result<usize> {
    if !q.is_connected() {
        return Err(CoreError::Unsupported(
            "round lower bounds are stated for connected queries".to_string(),
        ));
    }
    if gamma_one_contains(q, epsilon)? {
        return Ok(1);
    }
    let ke = k_epsilon(epsilon).max(2);
    if q.is_tree_like() {
        let diam = q.diameter().expect("connected query has a diameter");
        return Ok(ceil_log(diam.max(1), ke).max(2));
    }
    if let Some(k) = cycle_length(q) {
        let me = m_epsilon(epsilon);
        // ⌈ log_{kε}( k / (mε+1) ) ⌉ + 1, computed in integer arithmetic:
        // the smallest r with kε^r · (mε+1) ≥ k.
        let mut r = 0usize;
        let mut reach = me + 1;
        while reach < k {
            reach = reach.saturating_mul(ke);
            r += 1;
        }
        return Ok((r + 1).max(2));
    }
    round_lower_bound_via_plan(q, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn paper_good_set_for_chains() {
        // For Lk at ε = 0, taking every second atom is ε-good (Lemma 4.6).
        let q = families::chain(6);
        let every_other: Vec<AtomId> =
            ["S1", "S3", "S5"].iter().map(|n| q.atom_by_name(n).unwrap().0).collect();
        assert!(is_epsilon_good(&q, &every_other, Rational::ZERO).unwrap());
        // Two adjacent atoms are NOT ε-good (they lie in a Γ¹_0 pair).
        let adjacent: Vec<AtomId> =
            ["S1", "S2"].iter().map(|n| q.atom_by_name(n).unwrap().0).collect();
        assert!(!is_epsilon_good(&q, &adjacent, Rational::ZERO).unwrap());
    }

    #[test]
    fn goodness_requires_tree_like_complement() {
        // In C6 at ε = 0 the set {S1, S4} is ε-good: the complement
        // {S2,S3,S5,S6} consists of two paths (tree-like) and no Γ¹_0 pair
        // contains both S1 and S4.
        let q = families::cycle(6);
        let m: Vec<AtomId> = ["S1", "S4"].iter().map(|n| q.atom_by_name(n).unwrap().0).collect();
        assert!(is_epsilon_good(&q, &m, Rational::ZERO).unwrap());
        // The empty set is trivially good only if the whole query is
        // tree-like; C6 is not (χ = −1).
        assert!(!is_epsilon_good(&q, &[], Rational::ZERO).unwrap());
        // For a chain the empty set is good (complement is the whole chain,
        // which is tree-like).
        assert!(is_epsilon_good(&families::chain(4), &[], Rational::ZERO).unwrap());
    }

    #[test]
    fn greedy_good_set_for_chain_takes_alternate_atoms() {
        let q = families::chain(8);
        let good = greedy_good_set(&q, Rational::ZERO).unwrap().unwrap();
        // Greedy picks S1, S3, S5, S7.
        assert_eq!(good.len(), 4);
        let names: Vec<&str> = good.iter().map(|a| q.atom(*a).unwrap().name.as_str()).collect();
        assert_eq!(names, vec!["S1", "S3", "S5", "S7"]);
    }

    #[test]
    fn er_plan_for_chains_has_expected_length() {
        // For Lk at ε = 0 the greedy construction contracts halves of the
        // chain while the contraction stays outside Γ¹_0, yielding
        // ⌈log₂ k⌉ − 2 steps (so that the implied bound, steps + 2, equals
        // the ⌈log₂ k⌉ rounds of Corollary 4.8).
        for (k, expected_r) in [(4usize, 0usize), (8, 1), (16, 2), (5, 1)] {
            let plan = find_er_plan(&families::chain(k), Rational::ZERO).unwrap().unwrap();
            assert_eq!(plan.len(), expected_r, "L{k}");
            // The final query must not be one-round computable.
            assert!(!gamma_one_contains(&plan.final_query, Rational::ZERO).unwrap());
        }
        // L2 is already in Γ¹_0: no plan.
        assert!(find_er_plan(&families::chain(2), Rational::ZERO).unwrap().is_none());
    }

    #[test]
    fn plan_based_bound_matches_closed_form_for_chains() {
        for k in [3usize, 4, 5, 8, 9, 16] {
            let q = families::chain(k);
            let via_plan = round_lower_bound_via_plan(&q, Rational::ZERO).unwrap();
            let closed = round_lower_bound(&q, Rational::ZERO).unwrap();
            assert_eq!(via_plan, closed, "L{k}");
            assert_eq!(closed, ceil_log(k, 2), "L{k}");
        }
    }

    #[test]
    fn corollary_4_8_tree_like_bounds() {
        // Lk: diam = k, so the bound is ⌈log_{kε} k⌉.
        assert_eq!(round_lower_bound(&families::chain(16), Rational::ZERO).unwrap(), 4);
        assert_eq!(round_lower_bound(&families::chain(16), r(1, 2)).unwrap(), 2);
        assert_eq!(round_lower_bound(&families::chain(5), r(1, 2)).unwrap(), 2);
        // Stars are one-round queries.
        assert_eq!(round_lower_bound(&families::star(7), Rational::ZERO).unwrap(), 1);
        // SPk at ε = 0: tree-like with diameter 4 → ⌈log₂ 4⌉ = 2, matching
        // the two-round upper bound of Section 4.1.
        assert_eq!(round_lower_bound(&families::spoke(3), Rational::ZERO).unwrap(), 2);
    }

    #[test]
    fn lemma_4_9_cycle_bounds() {
        // C5 at ε = 0: mε = 2, kε = 2 → ⌈log₂(5/3)⌉ + 1 = 2.
        assert_eq!(round_lower_bound(&families::cycle(5), Rational::ZERO).unwrap(), 2);
        // C12 at ε = 0: smallest r with 3·2^r ≥ 12 is 2 → bound 3.
        assert_eq!(round_lower_bound(&families::cycle(12), Rational::ZERO).unwrap(), 3);
        // C3 at ε = 1/3 is one-round computable.
        assert_eq!(round_lower_bound(&families::cycle(3), r(1, 3)).unwrap(), 1);
        // C3 at ε = 0 needs at least 2 rounds.
        assert_eq!(round_lower_bound(&families::cycle(3), Rational::ZERO).unwrap(), 2);
    }

    #[test]
    fn cycle_detection() {
        assert_eq!(cycle_length(&families::cycle(5)), Some(5));
        assert_eq!(cycle_length(&families::cycle(3)), Some(3));
        assert_eq!(cycle_length(&families::chain(4)), None);
        assert_eq!(cycle_length(&families::star(3)), None);
        assert_eq!(cycle_length(&families::binomial(4, 2).unwrap()), None);
    }

    #[test]
    fn lower_bound_never_exceeds_planner_upper_bound() {
        use crate::multiround::planner::MultiRoundPlan;
        for (q, eps) in [
            (families::chain(9), Rational::ZERO),
            (families::chain(12), r(1, 2)),
            (families::cycle(6), Rational::ZERO),
            (families::cycle(8), r(1, 2)),
            (families::spoke(3), Rational::ZERO),
            (families::binomial(4, 2).unwrap(), Rational::ZERO),
            (families::star(4), Rational::ZERO),
        ] {
            let lower = round_lower_bound(&q, eps).unwrap();
            let plan = MultiRoundPlan::build(&q, eps).unwrap();
            assert!(
                lower <= plan.num_rounds(),
                "{}: lower bound {} exceeds plan depth {}",
                q.name(),
                lower,
                plan.num_rounds()
            );
            // Theorem 1.2: the gap between bounds is at most ~1 round for
            // these families.
            assert!(plan.num_rounds() - lower <= 1, "{}: gap too large", q.name());
        }
    }

    #[test]
    fn disconnected_queries_are_rejected() {
        let q = mpc_cq::Query::new("q", vec![("R", vec!["x"]), ("S", vec!["y"])]).unwrap();
        assert!(round_lower_bound(&q, Rational::ZERO).is_err());
    }

    #[test]
    fn non_tree_non_cycle_queries_fall_back_to_plan_bound() {
        // B(4,2) at ε = 0 is neither tree-like nor a cycle; it is not in
        // Γ¹_0 so the bound is at least 2.
        let q = families::binomial(4, 2).unwrap();
        let bound = round_lower_bound(&q, Rational::ZERO).unwrap();
        assert!(bound >= 2);
    }
}
