//! Execution of multi-round plans on the MPC simulator.
//!
//! A [`MultiRoundPlan`] is turned into an [`MpcProgram`] as follows. Every
//! operator gets its own HyperCube share allocation (over the operator's
//! variables) and hash seeds. Base relations are routed in round 1 straight
//! to the hypercube cells of the operator that consumes them — even if that
//! operator only runs in a later round, the routing depends only on the
//! tuple, so the data simply waits at the right server. At the end of each
//! round every server locally evaluates the operators of that round for
//! which it holds data, producing intermediate views; at the beginning of
//! the next round the view tuples are shipped — as join tuples, exactly
//! what the tuple-based MPC model of Section 4.1 permits — to the cells of
//! the operator that consumes them. After the final round each server
//! projects its part of the final view onto the original variable order.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_cq::{Atom, Query};
use mpc_lp::Rational;
use mpc_sim::program::hash_value;
use mpc_sim::{Cluster, MpcConfig, MpcProgram, Routed, RunResult, ServerState};
use mpc_storage::{Database, Relation, Tuple};

use crate::error::CoreError;
use crate::multiround::planner::MultiRoundPlan;
use crate::shares::ShareAllocation;
use crate::Result;

/// One operator of a plan, instantiated for execution: its share
/// allocation and hash seeds.
#[derive(Debug, Clone)]
struct OperatorExec {
    round: usize,
    view_name: String,
    query: Query,
    alloc: ShareAllocation,
    seeds: Vec<u64>,
}

impl OperatorExec {
    /// HyperCube destinations of one tuple of `atom` (an atom of this
    /// operator's query).
    fn destinations(&self, atom: &Atom, tuple: &Tuple) -> Vec<usize> {
        let mut partial: Vec<Option<usize>> = vec![None; self.query.num_vars()];
        for (pos, var) in atom.vars.iter().enumerate() {
            let value = tuple.values()[pos];
            let coord = hash_value(self.seeds[var.0], value, self.alloc.share(*var).max(1));
            partial[var.0] = Some(coord);
        }
        self.alloc.consistent_cells(&partial)
    }
}

/// A multi-round plan compiled into an executable MPC program.
#[derive(Debug, Clone)]
pub struct PlanProgram {
    original: Query,
    num_rounds: usize,
    operators: Vec<OperatorExec>,
    /// Relation/view name → index of the operator that consumes it.
    consumer_of: HashMap<String, usize>,
    /// View name → round in which it is produced.
    produced_in_round: HashMap<String, usize>,
    /// For each original variable (in order), the column of the final view
    /// holding its value.
    final_projection: Vec<usize>,
    final_view: String,
}

impl PlanProgram {
    /// Compile a plan for execution on `p` servers with the given hash
    /// seed.
    ///
    /// # Errors
    ///
    /// Propagates plan-validation and share-allocation errors; rejects
    /// plans in which one relation is consumed by two operators.
    pub fn new(plan: &MultiRoundPlan, p: usize, seed: u64) -> Result<Self> {
        plan.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut operators = Vec::new();
        let mut consumer_of = HashMap::new();
        let mut produced_in_round = HashMap::new();

        for (li, level) in plan.levels().iter().enumerate() {
            let round = li + 1;
            for op in &level.operators {
                let alloc = ShareAllocation::optimal(&op.query, p)?;
                let seeds: Vec<u64> = (0..op.query.num_vars()).map(|_| rng.gen()).collect();
                let index = operators.len();
                for atom in op.query.atoms() {
                    if consumer_of.insert(atom.name.clone(), index).is_some() {
                        return Err(CoreError::InvalidPlan(format!(
                            "relation {} is consumed by two operators",
                            atom.name
                        )));
                    }
                }
                produced_in_round.insert(op.view_name.clone(), round);
                operators.push(OperatorExec {
                    round,
                    view_name: op.view_name.clone(),
                    query: op.query.clone(),
                    alloc,
                    seeds,
                });
            }
        }

        let final_op = operators
            .last()
            .ok_or_else(|| CoreError::InvalidPlan("plan has no operators".to_string()))?;
        let final_view = final_op.view_name.clone();
        let final_vars = final_op.query.var_names();
        let mut final_projection = Vec::with_capacity(plan.original().num_vars());
        for v in plan.original().var_names() {
            let col = final_vars.iter().position(|w| w == v).ok_or_else(|| {
                CoreError::InvalidPlan(format!("final operator does not bind {v}"))
            })?;
            final_projection.push(col);
        }

        Ok(PlanProgram {
            original: plan.original().clone(),
            num_rounds: plan.num_rounds(),
            operators,
            consumer_of,
            produced_in_round,
            final_projection,
            final_view,
        })
    }

    /// The query this program computes.
    pub fn original(&self) -> &Query {
        &self.original
    }
}

impl MpcProgram for PlanProgram {
    fn num_rounds(&self) -> usize {
        self.num_rounds
    }

    fn route_input(&self, relation: &Relation, _p: usize) -> mpc_sim::Result<Vec<Routed>> {
        let Some(&op_idx) = self.consumer_of.get(relation.name()) else {
            return Ok(Vec::new());
        };
        let op = &self.operators[op_idx];
        let Some((_, atom)) = op.query.atom_by_name(relation.name()) else {
            return Ok(Vec::new());
        };
        Ok(relation
            .iter()
            .map(|t| Routed::new(relation.name(), t.clone(), op.destinations(atom, t)))
            .collect())
    }

    fn compute(
        &self,
        round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        let mut produced = Vec::new();
        for op in self.operators.iter().filter(|op| op.round == round) {
            if op.query.atoms().iter().any(|a| state.relation(&a.name).is_none()) {
                continue;
            }
            let db = state.as_database();
            let view = mpc_storage::join::evaluate(&op.query, &db)?;
            produced.push(view);
        }
        Ok(produced)
    }

    fn route_tuples(
        &self,
        round: usize,
        _server: usize,
        state: &ServerState,
    ) -> mpc_sim::Result<Vec<Routed>> {
        let mut msgs = Vec::new();
        for op in self.operators.iter().filter(|op| op.round == round) {
            for atom in op.query.atoms() {
                // Base relations were already placed in round 1; only views
                // produced in earlier rounds travel now.
                let Some(&produced_round) = self.produced_in_round.get(&atom.name) else {
                    continue;
                };
                if produced_round >= round {
                    continue;
                }
                let Some(rel) = state.relation(&atom.name) else {
                    continue;
                };
                for t in rel.iter() {
                    msgs.push(Routed::new(atom.name.clone(), t.clone(), op.destinations(atom, t)));
                }
            }
        }
        Ok(msgs)
    }

    fn output(&self, _server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        let mut out = Relation::empty(self.original.name(), self.original.num_vars());
        if let Some(view) = state.relation(&self.final_view) {
            for t in view.iter() {
                let projected: Vec<u64> =
                    self.final_projection.iter().map(|&c| t.values()[c]).collect();
                out.insert(Tuple(projected))
                    .map_err(|e| mpc_sim::SimError::Storage(e.to_string()))?;
            }
        }
        Ok(out)
    }

    fn output_name(&self) -> String {
        self.original.name().to_string()
    }

    fn output_arity(&self) -> usize {
        self.original.num_vars()
    }
}

/// The outcome of running a multi-round plan.
#[derive(Debug, Clone)]
pub struct MultiRoundOutcome {
    /// Simulator output and per-round statistics.
    pub result: RunResult,
    /// The plan that was executed.
    pub plan: MultiRoundPlan,
}

/// Convenience runner: plan + execute a query with multiple rounds.
#[derive(Debug, Clone)]
pub struct MultiRound;

impl MultiRound {
    /// Plan `q` at the given space exponent and execute it on `db` with `p`
    /// servers.
    ///
    /// # Errors
    ///
    /// Propagates planning, allocation and simulation errors.
    pub fn run(
        q: &Query,
        db: &Database,
        p: usize,
        epsilon: Rational,
        seed: u64,
    ) -> Result<MultiRoundOutcome> {
        let plan = MultiRoundPlan::build(q, epsilon)?;
        Self::run_plan(&plan, db, p, seed)
    }

    /// Execute an existing plan.
    ///
    /// # Errors
    ///
    /// Propagates allocation and simulation errors.
    pub fn run_plan(
        plan: &MultiRoundPlan,
        db: &Database,
        p: usize,
        seed: u64,
    ) -> Result<MultiRoundOutcome> {
        let program = PlanProgram::new(plan, p, seed)?;
        let config = MpcConfig::new(p, plan.epsilon().to_f64().clamp(0.0, 1.0));
        let cluster = Cluster::new(config)?;
        let result = cluster.run(&program, db)?;
        Ok(MultiRoundOutcome { result, plan: plan.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_storage::join::evaluate;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn chain_l4_two_rounds_at_epsilon_zero() {
        let q = families::chain(4);
        let db = matching_database(&q, 1200, 3);
        let outcome = MultiRound::run(&q, &db, 16, Rational::ZERO, 7).unwrap();
        assert_eq!(outcome.result.num_rounds(), 2);
        let expected = evaluate(&q, &db).unwrap();
        assert_eq!(expected.len(), 1200);
        assert!(outcome.result.output.same_tuples(&expected));
        assert!(outcome.result.within_budget(), "L4 bushy plan stays within the ε = 0 budget");
    }

    #[test]
    fn chain_l16_two_rounds_at_epsilon_half() {
        // Example 4.2.
        let q = families::chain(16);
        let db = matching_database(&q, 300, 5);
        let outcome = MultiRound::run(&q, &db, 16, r(1, 2), 11).unwrap();
        assert_eq!(outcome.result.num_rounds(), 2);
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
    }

    #[test]
    fn chain_l8_three_rounds_at_epsilon_zero() {
        let q = families::chain(8);
        let db = matching_database(&q, 500, 23);
        let outcome = MultiRound::run(&q, &db, 8, Rational::ZERO, 2).unwrap();
        assert_eq!(outcome.result.num_rounds(), 3);
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
    }

    #[test]
    fn spoke_two_rounds_at_epsilon_zero() {
        let q = families::spoke(3);
        let db = matching_database(&q, 400, 9);
        let outcome = MultiRound::run(&q, &db, 9, Rational::ZERO, 3).unwrap();
        assert_eq!(outcome.result.num_rounds(), 2);
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
    }

    #[test]
    fn cycle_c6_multi_round_matches_sequential() {
        let q = families::cycle(6);
        let db = matching_database(&q, 400, 13);
        let outcome = MultiRound::run(&q, &db, 8, Rational::ZERO, 5).unwrap();
        assert_eq!(outcome.result.num_rounds(), 3);
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
    }

    #[test]
    fn single_round_queries_collapse_to_hypercube() {
        let q = families::star(3);
        let db = matching_database(&q, 600, 21);
        let outcome = MultiRound::run(&q, &db, 8, Rational::ZERO, 1).unwrap();
        assert_eq!(outcome.result.num_rounds(), 1);
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
    }

    #[test]
    fn binomial_query_multi_round() {
        let q = families::binomial(4, 2).unwrap();
        let db = matching_database(&q, 200, 2);
        let outcome = MultiRound::run(&q, &db, 8, Rational::ZERO, 17).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
        assert_eq!(outcome.result.num_rounds(), 2);
    }

    #[test]
    fn plan_reuse_with_different_seeds_is_consistent() {
        let q = families::chain(6);
        let db = matching_database(&q, 300, 4);
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        let a = MultiRound::run_plan(&plan, &db, 8, 1).unwrap();
        let b = MultiRound::run_plan(&plan, &db, 8, 2).unwrap();
        assert!(a.result.output.same_tuples(&b.result.output));
        let expected = evaluate(&q, &db).unwrap();
        assert!(a.result.output.same_tuples(&expected));
    }

    #[test]
    fn deterministic_given_seed() {
        let q = families::chain(5);
        let db = matching_database(&q, 200, 6);
        let a = MultiRound::run(&q, &db, 8, Rational::ZERO, 99).unwrap();
        let b = MultiRound::run(&q, &db, 8, Rational::ZERO, 99).unwrap();
        assert_eq!(a.result.output.sorted_tuples(), b.result.output.sorted_tuples());
        assert_eq!(
            a.result.rounds.iter().map(|r| r.total_bytes_received).collect::<Vec<_>>(),
            b.result.rounds.iter().map(|r| r.total_bytes_received).collect::<Vec<_>>()
        );
    }
}
