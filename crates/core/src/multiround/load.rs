//! Per-round load predictions for multi-round plans — the refined
//! multi-round analysis of the journal version (arXiv:1602.06236,
//! Section 6).
//!
//! The conference paper's multi-round story counts *rounds*; the journal
//! version also tracks the **load of every round**: a `Γ^r_ε` plan runs
//! each operator as a one-round HyperCube at the operator's own `τ*`, so
//! round `t` costs each server the sum, over the tuples arriving in round
//! `t`, of `size · replication / cells` — and over matching databases the
//! intermediate views of tree-like operators are themselves matchings
//! (`n^{1+χ}` tuples, Lemma 3.4), which makes the per-round prediction a
//! closed form the simulator can be checked against.
//!
//! [`MultiRoundPlan::predict_loads`] mirrors the executor's routing
//! schedule exactly: base relations are shuffled in **round 1** straight
//! to the grid of the operator that consumes them (even when that operator
//! runs later), while a view produced in round `r` travels at the start of
//! the round of its consuming operator. The prediction for a round is the
//! *expected* per-server tuple count; the simulated max exceeds it only by
//! hash imbalance, which is what the comparison's slack absorbs.

use serde::Serialize;

use mpc_sim::RunResult;

use crate::error::CoreError;
use crate::multiround::planner::MultiRoundPlan;
use crate::shares::ShareAllocation;
use crate::Result;

/// Predicted communication of one operator of a plan.
#[derive(Debug, Clone, Serialize)]
pub struct OperatorLoadPrediction {
    /// The view the operator produces.
    pub view_name: String,
    /// The round the operator runs in (1-based).
    pub round: usize,
    /// Estimated tuples of each input relation/view the operator consumes,
    /// in atom order.
    pub input_tuples: Vec<(String, f64)>,
    /// Estimated tuples of the produced view: `s^{1+χ}` for input size `s`
    /// (Lemma 3.4 over matchings), at least 1.
    pub output_tuples: f64,
    /// Expected tuples this operator's shuffles deliver to one server,
    /// summed over its inputs (`Σ size · repl / cells`).
    pub expected_server_tuples: f64,
}

/// Predicted per-server load of one round of a plan.
#[derive(Debug, Clone, Serialize)]
pub struct RoundLoadPrediction {
    /// Round number (1-based).
    pub round: usize,
    /// Expected tuples received per server this round, summed over every
    /// shuffle the executor schedules for this round.
    pub predicted_tuples: f64,
}

/// The complete load profile of a plan at `(p, n)`.
#[derive(Debug, Clone, Serialize)]
pub struct PlanLoadPrediction {
    /// Server count the profile was computed for.
    pub p: usize,
    /// Per-relation input cardinality the profile was computed for.
    pub n: u64,
    /// One prediction per round.
    pub rounds: Vec<RoundLoadPrediction>,
    /// Per-operator detail (allocation-aware).
    pub operators: Vec<OperatorLoadPrediction>,
}

impl PlanLoadPrediction {
    /// The largest predicted per-round load.
    pub fn max_predicted_tuples(&self) -> f64 {
        self.rounds.iter().map(|r| r.predicted_tuples).fold(0.0, f64::max)
    }

    /// Compare the prediction with a simulated run, round by round.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPlan`] when the run has a different
    /// round count than the plan.
    pub fn compare(&self, result: &RunResult) -> Result<Vec<RoundComparison>> {
        if result.num_rounds() != self.rounds.len() {
            return Err(CoreError::InvalidPlan(format!(
                "run has {} rounds but the prediction covers {}",
                result.num_rounds(),
                self.rounds.len()
            )));
        }
        Ok(self
            .rounds
            .iter()
            .zip(&result.rounds)
            .map(|(pred, stats)| RoundComparison {
                round: pred.round,
                predicted_tuples: pred.predicted_tuples,
                simulated_max_tuples: stats.max_tuples_received,
                ratio: if pred.predicted_tuples > 0.0 {
                    stats.max_tuples_received as f64 / pred.predicted_tuples
                } else {
                    1.0
                },
            })
            .collect())
    }
}

/// One row of the predicted-vs-simulated comparison.
#[derive(Debug, Clone, Serialize)]
pub struct RoundComparison {
    /// Round number (1-based).
    pub round: usize,
    /// Predicted expected per-server tuples.
    pub predicted_tuples: f64,
    /// Simulated max per-server tuples received.
    pub simulated_max_tuples: u64,
    /// `simulated / predicted` (1.0 when nothing was predicted).
    pub ratio: f64,
}

impl MultiRoundPlan {
    /// Predict the per-round per-server loads of this plan on `p` servers
    /// over a database with `n` tuples per base relation, under the
    /// journal's analysis (each operator a one-round HyperCube at its own
    /// `τ*`, views estimated by the matching expectation `s^{1+χ}`).
    ///
    /// ```
    /// use mpc_core::multiround::planner::MultiRoundPlan;
    /// use mpc_lp::Rational;
    ///
    /// // L4 at ε = 0 is two rounds of binary joins; every shuffle is
    /// // replication-free, so round 1 delivers all 4n base tuples
    /// // (n/2 per server on p = 8) and round 2 the two n-tuple views.
    /// let plan = MultiRoundPlan::build(&mpc_cq::families::chain(4), Rational::ZERO).unwrap();
    /// let profile = plan.predict_loads(8, 1000).unwrap();
    /// assert_eq!(profile.rounds.len(), 2);
    /// assert!((profile.rounds[0].predicted_tuples - 500.0).abs() < 1e-9);
    /// assert!((profile.rounds[1].predicted_tuples - 250.0).abs() < 1e-9);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates LP/allocation errors; rejects `p == 0`.
    pub fn predict_loads(&self, p: usize, n: u64) -> Result<PlanLoadPrediction> {
        if p == 0 {
            return Err(CoreError::InvalidPlan("p must be at least 1".to_string()));
        }
        let mut rounds: Vec<RoundLoadPrediction> = (1..=self.num_rounds())
            .map(|round| RoundLoadPrediction { round, predicted_tuples: 0.0 })
            .collect();
        let mut operators = Vec::new();
        // Estimated size of each view, by name, as levels are processed.
        let mut view_sizes: std::collections::HashMap<String, f64> =
            std::collections::HashMap::new();

        for (li, level) in self.levels().iter().enumerate() {
            let round = li + 1;
            for op in &level.operators {
                let alloc = ShareAllocation::optimal(&op.query, p)?;
                let cells = alloc.num_cells() as f64;
                let mut input_tuples = Vec::new();
                let mut expected_server_tuples = 0.0;
                let mut max_input = 0.0f64;
                for a in op.query.atom_ids() {
                    let atom = op.query.atom(a)?;
                    let size = view_sizes.get(&atom.name).copied().unwrap_or(n as f64);
                    max_input = max_input.max(size);
                    let contribution =
                        size * alloc.replication_of_atom(&op.query, a)? as f64 / cells;
                    expected_server_tuples += contribution;
                    // The executor ships base relations in round 1 and a
                    // view at the start of its consumer's round.
                    let arrival = if view_sizes.contains_key(&atom.name) { round } else { 1 };
                    rounds[arrival - 1].predicted_tuples += contribution;
                    input_tuples.push((atom.name.clone(), size));
                }
                // Lemma 3.4: a connected query over matchings of size s has
                // expected answer count s^{1+χ} (at least 1 answer-slot).
                let chi = op.query.characteristic();
                let output_tuples = max_input.powi(1 + chi as i32).max(1.0);
                view_sizes.insert(op.view_name.clone(), output_tuples);
                operators.push(OperatorLoadPrediction {
                    view_name: op.view_name.clone(),
                    round,
                    input_tuples,
                    output_tuples,
                    expected_server_tuples,
                });
            }
        }

        Ok(PlanLoadPrediction { p, n, rounds, operators })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_lp::Rational;

    use crate::multiround::executor::MultiRound;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn chain_l4_profile_matches_hand_computation() {
        // L4 at ε = 0, p = 8, n = 1000. Level 1: two L2 operators, each a
        // replication-free hash join (shares all on the middle variable):
        // round 1 delivers 4 relations × n/8 tuples per server = n/2.
        // Level 2: the final join of V1(x0,x1,x2) and V2(x2,x3,x4), views
        // of expected size n (χ(L2) = 0): round 2 delivers 2n/8 = n/4.
        let plan = MultiRoundPlan::build(&families::chain(4), Rational::ZERO).unwrap();
        let profile = plan.predict_loads(8, 1000).unwrap();
        assert_eq!(profile.rounds.len(), 2);
        close(profile.rounds[0].predicted_tuples, 500.0);
        close(profile.rounds[1].predicted_tuples, 250.0);
        close(profile.max_predicted_tuples(), 500.0);
        // All three operators are tree-like: views of expected size n.
        for op in &profile.operators {
            close(op.output_tuples, 1000.0);
        }
    }

    #[test]
    fn base_relations_of_late_operators_count_in_round_one() {
        // SP2 at ε = 0: level 1 joins the two R-S pairs, level 2 joins the
        // views. Every base relation arrives in round 1 even though the
        // final operator runs in round 2.
        let plan = MultiRoundPlan::build(&families::spoke(2), Rational::ZERO).unwrap();
        let profile = plan.predict_loads(4, 400).unwrap();
        let base_total: f64 = profile.rounds[0].predicted_tuples;
        assert!(base_total > 0.0);
        // 4 base relations spread over the operators' grids.
        assert_eq!(profile.rounds.len(), plan.num_rounds());
    }

    #[test]
    fn prediction_brackets_simulation_for_matching_chains() {
        // Over matchings the chain profile is sharp: intermediate views
        // are matchings of exactly n tuples, so the simulated max load per
        // round sits within hash-imbalance slack of the prediction.
        for (k, p) in [(4usize, 8usize), (8, 8)] {
            let q = families::chain(k);
            let n = 2000u64;
            let db = matching_database(&q, n, 17);
            let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
            let profile = plan.predict_loads(p, n).unwrap();
            let outcome = MultiRound::run_plan(&plan, &db, p, 3).unwrap();
            let rows = profile.compare(&outcome.result).unwrap();
            assert_eq!(rows.len(), plan.num_rounds());
            for row in &rows {
                assert!(
                    row.ratio >= 1.0 / 2.0 && row.ratio <= 2.0,
                    "L{k} round {}: predicted {} vs simulated {}",
                    row.round,
                    row.predicted_tuples,
                    row.simulated_max_tuples
                );
            }
        }
    }

    #[test]
    fn comparison_rejects_mismatched_round_counts() {
        let q = families::chain(4);
        let db = matching_database(&q, 300, 5);
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        let profile = plan.predict_loads(8, 300).unwrap();
        // A one-round HyperCube run has the wrong round count for the
        // two-round plan profile.
        let one_round =
            crate::hypercube::HyperCube::run(&q, &db, &mpc_sim::MpcConfig::new(8, 0.9)).unwrap();
        assert!(profile.compare(&one_round.result).is_err());
    }

    #[test]
    fn zero_p_is_rejected() {
        let plan = MultiRoundPlan::build(&families::chain(4), Rational::ZERO).unwrap();
        assert!(plan.predict_loads(0, 100).is_err());
    }
}
