//! One-stop structural analysis of a query: everything Table 1 and Table 2
//! of the paper report, computed exactly.

use serde::Serialize;

use mpc_cq::Query;
use mpc_data::DbStatistics;
use mpc_lp::{QueryLps, Rational};

use crate::multiround::load::PlanLoadPrediction;
use crate::multiround::lower_bound::round_lower_bound;
use crate::multiround::planner::{round_upper_bound, MultiRoundPlan};
use crate::output_sensitive::OutputSensitiveBounds;
use crate::shares::ShareAllocation;
use crate::wco::{PlannerChoice, WcoLoadPrediction, WorstCaseOptimalPlan};
use crate::Result;

/// Round bounds of a query at a particular space exponent ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RoundBounds {
    /// Lower bound for tuple-based MPC(ε) algorithms (Corollary 4.8 /
    /// Lemma 4.9 / Theorem 4.5).
    pub lower: usize,
    /// Depth of the greedy `Γ^r_ε` plan this library constructs (an upper
    /// bound achieved by an executable algorithm).
    pub plan_depth: usize,
    /// The analytic radius-based upper bound of Lemma 4.3.
    pub radius_upper: usize,
}

/// The complete structural analysis of a connected conjunctive query.
#[derive(Debug, Clone, Serialize)]
pub struct QueryAnalysis {
    /// The analysed query (display form).
    pub query_text: String,
    /// Query name.
    pub name: String,
    /// Number of variables `k`.
    pub num_vars: usize,
    /// Number of atoms `ℓ`.
    pub num_atoms: usize,
    /// Total arity `a`.
    pub total_arity: usize,
    /// The characteristic `χ(q) = k + ℓ − a − c`.
    pub characteristic: i64,
    /// Whether the query is tree-like (connected and `χ = 0`).
    pub is_tree_like: bool,
    /// Hypergraph radius.
    pub radius: Option<usize>,
    /// Hypergraph diameter.
    pub diameter: Option<usize>,
    /// The fractional covering number `τ*`.
    pub tau_star: Rational,
    /// An optimal fractional vertex cover (one weight per variable).
    pub vertex_cover: Vec<Rational>,
    /// An optimal fractional edge packing (one weight per atom).
    pub edge_packing: Vec<Rational>,
    /// An optimal fractional edge cover (one weight per atom) — the AGM
    /// exponents used by the output-sensitive bounds.
    pub edge_cover: Vec<Rational>,
    /// The fractional edge-cover value `ρ*` (the AGM exponent of the
    /// journal version's emission lower bound).
    pub rho_star: Rational,
    /// The one-round space exponent `ε* = 1 − 1/τ*`.
    pub space_exponent: Rational,
    /// Share exponents `vᵢ/τ*` (Section 3.1), one per variable.
    pub share_exponents: Vec<Rational>,
    /// Exponent `e` such that the expected answer size over matching
    /// databases is `n^e` (Lemma 3.4: `e = 1 + χ` for connected queries).
    pub expected_answer_exponent: i64,
    /// Which LP-solver layer produced the triple: `"cache-hit"`,
    /// `"closed-form"` or `"simplex"` (see `mpc_lp::SolverPath`).
    pub lp_solver_path: String,
    /// Process-wide [`mpc_lp::LpCache`] hits, snapshotted right after this
    /// analysis' solve — together with `lp_cache_misses`, lets a service
    /// layer report cache-hot vs cold planning per query.
    pub lp_cache_hits: u64,
    /// Process-wide [`mpc_lp::LpCache`] misses at the same snapshot.
    pub lp_cache_misses: u64,
    #[serde(skip)]
    query: Query,
}

impl QueryAnalysis {
    /// Analyse a query.
    ///
    /// The LP triple is obtained through the layered solver of
    /// [`QueryLps::solve`] (closed-form families → memoising cache →
    /// sparse simplex); [`QueryAnalysis::lp_solver_path`] records which
    /// layer answered, so repeated analyses of isomorphic non-family
    /// queries are cache hits.
    ///
    /// # Errors
    ///
    /// Propagates LP errors.
    pub fn analyze(q: &Query) -> Result<Self> {
        let (lps, path) = QueryLps::solve_traced(q)?;
        let cache_stats = mpc_lp::LpCache::global().stats();
        let tau = lps.covering_number();
        let space_exponent = Rational::ONE - tau.recip()?;
        let share_exponents = lps
            .vertex_cover()
            .weights()
            .iter()
            .map(|v| v.checked_div(&tau))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(QueryAnalysis {
            query_text: q.to_string(),
            name: q.name().to_string(),
            num_vars: q.num_vars(),
            num_atoms: q.num_atoms(),
            total_arity: q.total_arity(),
            characteristic: q.characteristic(),
            is_tree_like: q.is_tree_like(),
            radius: q.radius(),
            diameter: q.diameter(),
            tau_star: tau,
            vertex_cover: lps.vertex_cover().weights().to_vec(),
            edge_packing: lps.edge_packing().weights().to_vec(),
            edge_cover: lps.edge_cover().weights().to_vec(),
            rho_star: lps.edge_cover().total(),
            space_exponent,
            share_exponents,
            expected_answer_exponent: mpc_storage::estimate::expected_answer_exponent(q),
            lp_solver_path: path.to_string(),
            lp_cache_hits: cache_stats.hits,
            lp_cache_misses: cache_stats.misses,
            query: q.clone(),
        })
    }

    /// The analysed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The integer share allocation for `p` servers.
    ///
    /// # Errors
    ///
    /// Propagates LP errors.
    pub fn shares_for(&self, p: usize) -> Result<ShareAllocation> {
        ShareAllocation::optimal(&self.query, p)
    }

    /// Round lower/upper bounds at a given space exponent (connected
    /// queries only).
    ///
    /// # Errors
    ///
    /// Propagates LP and planning errors.
    pub fn round_bounds(&self, epsilon: Rational) -> Result<RoundBounds> {
        let lower = round_lower_bound(&self.query, epsilon)?;
        let plan = MultiRoundPlan::build(&self.query, epsilon)?;
        let radius_upper = round_upper_bound(&self.query, epsilon)?;
        Ok(RoundBounds { lower, plan_depth: plan.num_rounds(), radius_upper })
    }

    /// The journal version's output-sensitive load bounds at `(n, m, p)`,
    /// built from this analysis' already-solved LP duals (no re-solve).
    ///
    /// # Errors
    ///
    /// Propagates rational-arithmetic errors.
    pub fn output_bounds(&self, n: u64, m: u64, p: usize) -> Result<OutputSensitiveBounds> {
        OutputSensitiveBounds::from_lp_values(
            self.tau_star,
            self.rho_star,
            self.expected_answer_exponent,
            self.num_atoms,
            n,
            m,
            p,
        )
    }

    /// The journal version's refined multi-round analysis: plan the query
    /// at `epsilon` and predict the per-round per-server loads on `p`
    /// servers over `n`-tuple base relations.
    ///
    /// # Errors
    ///
    /// Propagates planning and LP errors.
    pub fn round_load_profile(
        &self,
        epsilon: Rational,
        p: usize,
        n: u64,
    ) -> Result<PlanLoadPrediction> {
        MultiRoundPlan::build(&self.query, epsilon)?.predict_loads(p, n)
    }

    /// The strategy picker: which planner should run this query at space
    /// exponent `epsilon`, given whether the data is skewed (heavy
    /// hitters above the share threshold).
    ///
    /// | data      | tree-like, 1 round | tree-like, deep | cyclic |
    /// |-----------|--------------------|-----------------|--------|
    /// | skew-free | HyperCube          | multi-round     | HyperCube / multi-round |
    /// | skewed    | skew-resilient     | multi-round     | **worst-case optimal**  |
    ///
    /// Skew-free data never needs the heavy machinery (the HyperCube is
    /// already optimal there, Proposition 3.2); skewed tree-like queries
    /// are handled by the one-round residual plans of `mpc-skew` or the
    /// multi-round `Γ^r_ε` plan; skewed *cyclic* queries are where the
    /// one-round load provably degrades to `n/p^{1/2}`-style bounds and
    /// the BKS 2018 heavy/light strategy ([`WorstCaseOptimalPlan`]) wins.
    ///
    /// When the caller holds [`DbStatistics`] rather than a pre-computed
    /// skew verdict, use [`QueryAnalysis::planner_choice_with_stats`] —
    /// it derives `skewed` from the same scan (or sample) every other
    /// planner consumes.
    ///
    /// ```
    /// use mpc_core::analysis::QueryAnalysis;
    /// use mpc_core::wco::PlannerChoice;
    /// use mpc_lp::Rational;
    ///
    /// // The triangle is one-round computable at its ε* = 1/3 — but only
    /// // the worst-case optimal strategy survives skew on a cyclic query.
    /// let c3 = QueryAnalysis::analyze(&mpc_cq::families::triangle()).unwrap();
    /// let eps = Rational::new(1, 3);
    /// assert_eq!(c3.planner_choice(eps, false).unwrap(), PlannerChoice::OneRoundHyperCube);
    /// assert_eq!(c3.planner_choice(eps, true).unwrap(), PlannerChoice::WorstCaseOptimal);
    ///
    /// // A deep chain at ε = 0 takes the multi-round plan either way.
    /// let l8 = QueryAnalysis::analyze(&mpc_cq::families::chain(8)).unwrap();
    /// assert_eq!(l8.planner_choice(Rational::ZERO, true).unwrap(), PlannerChoice::MultiRound);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates planning and LP errors.
    pub fn planner_choice(&self, epsilon: Rational, skewed: bool) -> Result<PlannerChoice> {
        let depth = MultiRoundPlan::build(&self.query, epsilon)?.num_rounds();
        Ok(if !skewed {
            if depth == 1 {
                PlannerChoice::OneRoundHyperCube
            } else {
                PlannerChoice::MultiRound
            }
        } else if self.is_tree_like {
            if depth == 1 {
                PlannerChoice::OneRoundSkewResilient
            } else {
                PlannerChoice::MultiRound
            }
        } else {
            PlannerChoice::WorstCaseOptimal
        })
    }

    /// Does the data exceed the share-threshold skew bound anywhere?
    ///
    /// A value is skew evidence at variable `x` when its (estimated)
    /// frequency at some occurrence of `x` exceeds `|R| / p_x` for that
    /// atom's relation and `x`'s integer share on `p` servers — the exact
    /// threshold beyond which hash-partitioning cannot balance the
    /// HyperCube (and the same threshold [`WorstCaseOptimalPlan`] and the
    /// `mpc-skew` detector key heavy values on). Variables with share 1
    /// are never skew evidence: the HyperCube does not balance on them.
    ///
    /// The verdict is read from [`DbStatistics`], so one scan (or one
    /// seeded sample) serves analysis, detection and planning alike; under
    /// sampled statistics the verdict inherits the sample's confidence —
    /// a hitter the sample missed is consistently invisible to every
    /// consumer, which degrades balance, never correctness.
    ///
    /// # Errors
    ///
    /// Propagates LP/allocation errors from the share computation.
    pub fn is_skewed(&self, p: usize, stats: &DbStatistics) -> Result<bool> {
        let alloc = self.shares_for(p)?;
        for atom in self.query.atoms() {
            let Some(rs) = stats.relation(&atom.name) else { continue };
            let total = rs.total() as f64;
            if total == 0.0 {
                continue;
            }
            for (pos, var) in atom.vars.iter().enumerate() {
                let share = alloc.share(*var).max(1) as f64;
                if share <= 1.0 {
                    continue;
                }
                if rs.column_estimates(pos).any(|(_, est)| est * share > total) {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// [`QueryAnalysis::planner_choice`] with the skew verdict derived
    /// from shared [`DbStatistics`] (see [`QueryAnalysis::is_skewed`])
    /// instead of a caller-supplied boolean — the entry point of the
    /// adaptive runtime, where one `DbStatistics::collect` feeds the
    /// strategy picker, the heavy-hitter detector and the WCO planner
    /// without re-scanning the database.
    ///
    /// # Errors
    ///
    /// Propagates planning and LP errors.
    pub fn planner_choice_with_stats(
        &self,
        epsilon: Rational,
        p: usize,
        stats: &DbStatistics,
    ) -> Result<PlannerChoice> {
        let skewed = self.is_skewed(p, stats)?;
        self.planner_choice(epsilon, skewed)
    }

    /// Plan the query worst-case optimally against `db` on `p` servers
    /// and predict the per-round per-server loads (the WCO counterpart
    /// of [`QueryAnalysis::round_load_profile`]; exact masses, not
    /// matching estimates).
    ///
    /// # Errors
    ///
    /// Propagates planning and LP errors; rejects `p = 0`.
    pub fn wco_load_profile(
        &self,
        db: &mpc_storage::Database,
        p: usize,
    ) -> Result<WcoLoadPrediction> {
        WcoLoadPrediction::predict(&WorstCaseOptimalPlan::build(&self.query, db, p)?)
    }

    /// Human-readable one-line summary (used by the table binaries).
    pub fn summary(&self) -> String {
        format!(
            "{}: k={} ℓ={} τ*={} ε*={} χ={} rad={:?} diam={:?} E[|q|]=n^{}",
            self.name,
            self.num_vars,
            self.num_atoms,
            self.tau_star,
            self.space_exponent,
            self.characteristic,
            self.radius,
            self.diameter,
            self.expected_answer_exponent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn table_1_rows() {
        // Ck row.
        let a = QueryAnalysis::analyze(&families::cycle(5)).unwrap();
        assert_eq!(a.tau_star, r(5, 2));
        assert_eq!(a.space_exponent, r(3, 5));
        assert_eq!(a.share_exponents, vec![r(1, 5); 5]);
        assert_eq!(a.expected_answer_exponent, 0); // E = n^0 = 1

        // Tk row.
        let a = QueryAnalysis::analyze(&families::star(4)).unwrap();
        assert_eq!(a.tau_star, Rational::ONE);
        assert_eq!(a.space_exponent, Rational::ZERO);
        assert_eq!(a.expected_answer_exponent, 1); // E = n

        // Lk row.
        let a = QueryAnalysis::analyze(&families::chain(5)).unwrap();
        assert_eq!(a.tau_star, r(3, 1));
        assert_eq!(a.space_exponent, r(2, 3));
        assert_eq!(a.expected_answer_exponent, 1);
        // B(k,m) row.
        let a = QueryAnalysis::analyze(&families::binomial(4, 2).unwrap()).unwrap();
        assert_eq!(a.tau_star, r(2, 1));
        assert_eq!(a.space_exponent, r(1, 2));
        assert_eq!(a.expected_answer_exponent, 4 - 6);
    }

    #[test]
    fn share_exponents_sum_to_one() {
        for q in [families::cycle(3), families::chain(7), families::spoke(3)] {
            let a = QueryAnalysis::analyze(&q).unwrap();
            assert_eq!(Rational::sum(a.share_exponents.iter()).unwrap(), Rational::ONE);
        }
    }

    #[test]
    fn table_2_round_bounds() {
        // Lk at ε = 0: ⌈log₂ k⌉ rounds, lower = upper.
        let a = QueryAnalysis::analyze(&families::chain(8)).unwrap();
        let b = a.round_bounds(Rational::ZERO).unwrap();
        assert_eq!(b.lower, 3);
        assert_eq!(b.plan_depth, 3);
        // SPk at ε = 0: exactly two rounds.
        let a = QueryAnalysis::analyze(&families::spoke(4)).unwrap();
        let b = a.round_bounds(Rational::ZERO).unwrap();
        assert_eq!(b.lower, 2);
        assert_eq!(b.plan_depth, 2);
        // Tk: one round suffices.
        let a = QueryAnalysis::analyze(&families::star(6)).unwrap();
        let b = a.round_bounds(Rational::ZERO).unwrap();
        assert_eq!(b.lower, 1);
        assert_eq!(b.plan_depth, 1);
    }

    #[test]
    fn summary_mentions_key_quantities() {
        let a = QueryAnalysis::analyze(&families::cycle(3)).unwrap();
        let s = a.summary();
        assert!(s.contains("C3"));
        assert!(s.contains("3/2"));
        assert!(s.contains("1/3"));
    }

    #[test]
    fn solver_path_is_recorded() {
        // Recognised families always resolve via the closed form (cheaper
        // than even a cache hit).
        let a = QueryAnalysis::analyze(&families::cycle(11)).unwrap();
        assert_eq!(a.lp_solver_path, "closed-form");
        // The witness query is no family: the first solve in the process
        // is simplex, every later one (any test, any thread) a cache hit.
        let w = QueryAnalysis::analyze(&families::witness_query()).unwrap();
        assert!(
            w.lp_solver_path == "simplex" || w.lp_solver_path == "cache-hit",
            "got {}",
            w.lp_solver_path
        );
        let w2 = QueryAnalysis::analyze(&families::witness_query()).unwrap();
        assert_eq!(w2.lp_solver_path, "cache-hit");
    }

    #[test]
    fn lp_cache_counters_are_snapshotted() {
        // The first witness solve records a miss; the re-analysis records
        // one more hit than whatever the snapshot held before it. (The
        // cache is process-global, so only deltas between consecutive
        // snapshots are meaningful in a shared test process.)
        let w1 = QueryAnalysis::analyze(&families::witness_query()).unwrap();
        let w2 = QueryAnalysis::analyze(&families::witness_query()).unwrap();
        assert!(w2.lp_cache_hits > w1.lp_cache_hits, "second solve is a cache hit");
        assert!(w1.lp_cache_misses >= 1, "the cold witness solve missed");
        assert!(w2.lp_cache_misses >= w1.lp_cache_misses, "counters are monotone");
    }

    #[test]
    fn edge_cover_and_rho_star_are_exposed() {
        // T3: packing value 1 but edge cover 3 (one unit per leaf atom).
        let a = QueryAnalysis::analyze(&families::star(3)).unwrap();
        assert_eq!(a.rho_star, r(3, 1));
        assert_eq!(a.edge_cover.len(), a.num_atoms);
        assert_eq!(Rational::sum(a.edge_cover.iter()).unwrap(), a.rho_star);
        // C4: cover and packing coincide at 2.
        let a = QueryAnalysis::analyze(&families::cycle(4)).unwrap();
        assert_eq!(a.rho_star, r(2, 1));
    }

    #[test]
    fn output_bounds_reuse_the_analysis_duals() {
        let a = QueryAnalysis::analyze(&families::cycle(3)).unwrap();
        let b = a.output_bounds(1000, 1000, 8).unwrap();
        assert_eq!(b.tau_star, a.tau_star);
        assert_eq!(b.rho_star, a.rho_star);
        // (1000/8)^(2/3) = 25.
        assert!((b.lower_tuples - 25.0).abs() < 1e-9);
    }

    #[test]
    fn round_load_profile_covers_every_plan_round() {
        let a = QueryAnalysis::analyze(&families::chain(8)).unwrap();
        let profile = a.round_load_profile(Rational::ZERO, 8, 500).unwrap();
        assert_eq!(profile.rounds.len(), 3); // ⌈log₂ 8⌉
        assert!(profile.max_predicted_tuples() > 0.0);
    }

    #[test]
    fn stats_driven_planner_choice_detects_skew() {
        let q = families::triangle();
        let a = QueryAnalysis::analyze(&q).unwrap();
        let eps = r(1, 3);
        // A matching database is skew-free: no value repeats in a column.
        let db = mpc_data::matching_database(&q, 600, 7);
        let stats = DbStatistics::collect(&db, mpc_data::StatsMode::Exact);
        assert!(!a.is_skewed(27, &stats).unwrap());
        assert_eq!(
            a.planner_choice_with_stats(eps, 27, &stats).unwrap(),
            PlannerChoice::OneRoundHyperCube
        );
        // A planted hitter on half of every relation crosses `|R| / p_x`.
        let db = mpc_data::skew::heavy_hitter_database(&q, 1000, 2000, 0.5, 11);
        let stats = DbStatistics::collect(&db, mpc_data::StatsMode::Exact);
        assert!(a.is_skewed(27, &stats).unwrap());
        assert_eq!(
            a.planner_choice_with_stats(eps, 27, &stats).unwrap(),
            PlannerChoice::WorstCaseOptimal
        );
        // A seeded sample reaches the same verdict from O(budget) tuples:
        // a value on half the relation cannot hide from 400 draws.
        let mode = mpc_data::StatsMode::Sampled { budget: 400, seed: 3 };
        let sampled = DbStatistics::collect(&db, mode);
        assert!(a.is_skewed(27, &sampled).unwrap());
    }

    #[test]
    fn shares_for_exposes_allocation() {
        let a = QueryAnalysis::analyze(&families::cycle(3)).unwrap();
        let alloc = a.shares_for(27).unwrap();
        assert_eq!(alloc.shares, vec![3, 3, 3]);
    }
}
