//! Error type for the core crate.

use std::fmt;

/// Errors raised by the HyperCube algorithm, the planner and the analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Propagated query error.
    Query(String),
    /// Propagated LP error.
    Lp(String),
    /// Propagated storage error.
    Storage(String),
    /// Propagated simulator error.
    Sim(String),
    /// The query does not satisfy a precondition of the requested analysis
    /// or algorithm (e.g. disconnected where a connected query is needed).
    Unsupported(String),
    /// A plan/program was constructed with inconsistent parameters.
    InvalidPlan(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(m) => write!(f, "query error: {m}"),
            CoreError::Lp(m) => write!(f, "LP error: {m}"),
            CoreError::Storage(m) => write!(f, "storage error: {m}"),
            CoreError::Sim(m) => write!(f, "simulation error: {m}"),
            CoreError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            CoreError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mpc_cq::CqError> for CoreError {
    fn from(e: mpc_cq::CqError) -> Self {
        CoreError::Query(e.to_string())
    }
}

impl From<mpc_lp::LpError> for CoreError {
    fn from(e: mpc_lp::LpError) -> Self {
        CoreError::Lp(e.to_string())
    }
}

impl From<mpc_storage::StorageError> for CoreError {
    fn from(e: mpc_storage::StorageError) -> Self {
        CoreError::Storage(e.to_string())
    }
}

impl From<mpc_sim::SimError> for CoreError {
    fn from(e: mpc_sim::SimError) -> Self {
        CoreError::Sim(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = mpc_cq::CqError::EmptyQuery.into();
        assert!(matches!(e, CoreError::Query(_)));
        assert!(e.to_string().contains("query"));
        let e: CoreError = mpc_lp::LpError::Infeasible.into();
        assert!(matches!(e, CoreError::Lp(_)));
        let e = CoreError::Unsupported("disconnected".to_string());
        assert!(e.to_string().contains("disconnected"));
    }
}
