//! Output-sensitive load bounds of the journal version (*Beame, Koutris &
//! Suciu, "Communication Cost in Parallel Query Processing"*,
//! arXiv:1602.06236).
//!
//! The 2013 conference paper states its one-round bounds in terms of the
//! input size alone: any one-round algorithm needs per-server load
//! `L ≳ n / p^{1/τ*}` and HyperCube achieves it. The journal version
//! refines both sides with the **output cardinality `m`**:
//!
//! * **Emission lower bound** (instance-level, deterministic). A server
//!   that received at most `L` tuples of each relation can emit at most
//!   `L^{ρ*}` answers, where `ρ*` is the optimal *fractional edge cover*
//!   value — this is the AGM/Friedgut bound applied to the server's
//!   received fragments (Section 4 of the journal version; the same
//!   inequality that powers Lemma 3.7 of the conference paper). Since the
//!   `p` servers together must emit all `m` answers,
//!   `m ≤ p · L^{ρ*}`, i.e. `L ≥ (m/p)^{1/ρ*}`. This holds for **every**
//!   run of every correct tuple-based algorithm, which is what makes it a
//!   hard CI gate: a simulated max load below it is a simulator bug.
//! * **Matching-expectation lower bound** (distributional). Over random
//!   matching databases, a server receiving an `L/n` fraction of each
//!   relation knows an expected `(L/n)^{τ*}` fraction of the `E[|q|] = n^e`
//!   answers (`e = c + χ(q)`, Lemma 3.4), for `τ*` the optimal edge
//!   *packing* value. Reporting `m` answers in expectation therefore needs
//!   `p · (L/n)^{τ*} · n^e ≥ m`, i.e.
//!   `L ≥ n^{1−e/τ*} · (m/p)^{1/τ*}`; at `m = E[|q|]` this is exactly the
//!   conference bound `n / p^{1/τ*}`.
//! * **Upper bound**. HyperCube with fractional shares receives at most
//!   `ℓ · n / p^{1/τ*}` tuples per server in expectation on skew-free
//!   inputs; [`OutputSensitiveBounds::rounded_upper_tuples`] re-derives the
//!   same quantity from an actual *integer* [`ShareAllocation`], so the
//!   rounding penalty is part of the predicted number rather than hidden
//!   in a constant.
//!
//! All exponents are **exact rationals** read off the LP layer's duals
//! (the packing/cover totals of [`QueryLps`]); only the final evaluation
//! at concrete `(n, m, p)` goes through `f64`.

use serde::Serialize;
use std::fmt;

use mpc_cq::Query;
use mpc_lp::{QueryLps, Rational};

use crate::shares::ShareAllocation;
use crate::Result;

/// A load expression `coeff · n^a · m^b · p^c` with exact rational
/// exponents, evaluated lazily so the symbolic form stays inspectable
/// (and testable against the journal's closed forms).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LoadExpr {
    /// Multiplicative constant (usually 1 or the number of atoms `ℓ`).
    pub coeff: Rational,
    /// Exponent of the per-relation input cardinality `n`.
    pub n_exp: Rational,
    /// Exponent of the output cardinality `m`.
    pub m_exp: Rational,
    /// Exponent of the server count `p`.
    pub p_exp: Rational,
}

impl LoadExpr {
    /// Evaluate at concrete `(n, m, p)`, in tuples. `0^0 = 1` by the usual
    /// convention; an expression with positive `m`-exponent evaluates to 0
    /// at `m = 0` (no output ⇒ no emission obligation).
    pub fn eval(&self, n: u64, m: u64, p: usize) -> f64 {
        self.coeff.to_f64()
            * pow(n as f64, self.n_exp)
            * pow(m as f64, self.m_exp)
            * pow(p as f64, self.p_exp)
    }
}

impl fmt::Display for LoadExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.coeff != Rational::ONE {
            parts.push(self.coeff.to_string());
        }
        for (base, exp) in [("n", self.n_exp), ("m", self.m_exp), ("p", self.p_exp)] {
            if exp == Rational::ONE {
                parts.push(base.to_string());
            } else if !exp.is_zero() {
                parts.push(format!("{base}^({exp})"));
            }
        }
        if parts.is_empty() {
            parts.push("1".to_string());
        }
        write!(f, "{}", parts.join("·"))
    }
}

/// `base^exp` for a rational exponent (`0^0 = 1`, `0^positive = 0`).
fn pow(base: f64, exp: Rational) -> f64 {
    if exp.is_zero() {
        return 1.0;
    }
    base.powf(exp.to_f64())
}

/// The journal-version load bounds of a query at `(n, m, p)`: `n` tuples
/// per relation, exactly `m` output tuples, `p` servers. Loads are in
/// tuples received per server in the (single) communication round.
#[derive(Debug, Clone, Serialize)]
pub struct OutputSensitiveBounds {
    /// Per-relation input cardinality.
    pub n: u64,
    /// Output cardinality.
    pub m: u64,
    /// Server count.
    pub p: usize,
    /// Optimal fractional edge-packing value `τ*` (= vertex-cover value).
    pub tau_star: Rational,
    /// Optimal fractional edge-cover value `ρ*` (the AGM exponent).
    pub rho_star: Rational,
    /// Exponent `e` with `E[|q|] = n^e` over matching databases.
    pub answer_exponent: i64,
    /// The emission lower bound `(m/p)^{1/ρ*}` in symbolic form.
    pub lower: LoadExpr,
    /// The matching-expectation lower bound
    /// `n^{1−e/τ*} · (m/p)^{1/τ*}` in symbolic form.
    pub matching_lower: LoadExpr,
    /// The fractional-share HyperCube upper bound `ℓ · n / p^{1/τ*}` in
    /// symbolic form.
    pub upper: LoadExpr,
    /// [`OutputSensitiveBounds::lower`] evaluated at `(n, m, p)`.
    pub lower_tuples: f64,
    /// [`OutputSensitiveBounds::matching_lower`] evaluated at `(n, m, p)`.
    pub matching_lower_tuples: f64,
    /// [`OutputSensitiveBounds::upper`] evaluated at `(n, m, p)`.
    pub upper_tuples: f64,
    /// Some server must *emit* at least `m/p` answers (before cross-server
    /// deduplication): every answer is emitted somewhere.
    pub output_lower_per_server: f64,
}

impl OutputSensitiveBounds {
    /// Compute the bounds for a query through the layered LP solver
    /// (closed form → cache → sparse simplex), reusing the packing and
    /// edge-cover duals of [`QueryLps::solve`].
    ///
    /// ```
    /// use mpc_core::output_sensitive::OutputSensitiveBounds;
    ///
    /// // C3 with full output m = E[|q|]: the matching-expectation bound
    /// // collapses to the conference bound n / p^(1/τ*) = n / p^(2/3).
    /// let q = mpc_cq::families::triangle();
    /// let b = OutputSensitiveBounds::compute(&q, 1000, 1, 8).unwrap();
    /// assert_eq!(b.tau_star, mpc_lp::Rational::new(3, 2));
    /// assert!((b.matching_lower_tuples - 1000.0 / 8f64.powf(2.0 / 3.0)).abs() < 1e-6);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates LP errors.
    pub fn compute(q: &Query, n: u64, m: u64, p: usize) -> Result<Self> {
        let lps = QueryLps::solve(q)?;
        Self::from_lp_values(
            lps.edge_packing().total(),
            lps.edge_cover().total(),
            mpc_storage::estimate::expected_answer_exponent(q),
            q.num_atoms(),
            n,
            m,
            p,
        )
    }

    /// Build the bounds from already-solved LP values: the packing total
    /// `τ*`, the edge-cover total `ρ*`, the matching answer exponent `e`
    /// and the atom count `ℓ`. This is what [`crate::analysis::QueryAnalysis`]
    /// calls, so an analysis never re-solves the LPs.
    ///
    /// # Errors
    ///
    /// Rejects non-positive `τ*`/`ρ*` (impossible for real queries) and
    /// propagates rational-arithmetic errors.
    pub fn from_lp_values(
        tau_star: Rational,
        rho_star: Rational,
        answer_exponent: i64,
        num_atoms: usize,
        n: u64,
        m: u64,
        p: usize,
    ) -> Result<Self> {
        let inv_tau = tau_star.recip()?;
        let inv_rho = rho_star.recip()?;
        let lower = LoadExpr {
            coeff: Rational::ONE,
            n_exp: Rational::ZERO,
            m_exp: inv_rho,
            p_exp: Rational::ZERO - inv_rho,
        };
        let matching_lower = LoadExpr {
            coeff: Rational::ONE,
            n_exp: Rational::ONE - inv_tau.checked_mul(&Rational::from_int(answer_exponent))?,
            m_exp: inv_tau,
            p_exp: Rational::ZERO - inv_tau,
        };
        let upper = LoadExpr {
            coeff: Rational::new(num_atoms as i128, 1),
            n_exp: Rational::ONE,
            m_exp: Rational::ZERO,
            p_exp: Rational::ZERO - inv_tau,
        };
        Ok(OutputSensitiveBounds {
            n,
            m,
            p,
            tau_star,
            rho_star,
            answer_exponent,
            lower_tuples: lower.eval(n, m, p),
            matching_lower_tuples: matching_lower.eval(n, m, p),
            upper_tuples: upper.eval(n, m, p),
            output_lower_per_server: m as f64 / p as f64,
            lower,
            matching_lower,
            upper,
        })
    }

    /// The expected per-server received tuples of HyperCube under an
    /// actual **integer** share allocation: `Σⱼ n · replⱼ / cells`, where
    /// `replⱼ` is the replication factor of atom `j` and `cells` the cells
    /// actually used. This is the upper bound the CI gate compares against
    /// (times a slack factor for hash imbalance), so share rounding is
    /// accounted for exactly instead of being absorbed into a constant.
    ///
    /// # Errors
    ///
    /// Propagates query-structure errors.
    pub fn rounded_upper_tuples(&self, q: &Query, alloc: &ShareAllocation) -> Result<f64> {
        let cells = alloc.num_cells() as f64;
        let mut total = 0.0;
        for a in q.atom_ids() {
            total += self.n as f64 * alloc.replication_of_atom(q, a)? as f64 / cells;
        }
        Ok(total)
    }

    /// Check a simulated one-round run against the bracket
    /// `lower ≤ simulated ≤ rounded_upper · slack`.
    ///
    /// # Errors
    ///
    /// Propagates query-structure errors from the rounded upper bound.
    pub fn bracket(
        &self,
        q: &Query,
        alloc: &ShareAllocation,
        simulated_max_tuples: u64,
        slack: f64,
    ) -> Result<BracketVerdict> {
        let rounded_upper = self.rounded_upper_tuples(q, alloc)?;
        let simulated = simulated_max_tuples as f64;
        Ok(BracketVerdict {
            lower_tuples: self.lower_tuples,
            rounded_upper_tuples: rounded_upper,
            slack,
            simulated_max_tuples,
            lower_ok: simulated + 1e-9 >= self.lower_tuples,
            upper_ok: simulated <= rounded_upper * slack + 1e-9,
        })
    }
}

/// The outcome of checking a simulated load against the proven bracket.
#[derive(Debug, Clone, Serialize)]
pub struct BracketVerdict {
    /// The emission lower bound `(m/p)^{1/ρ*}`.
    pub lower_tuples: f64,
    /// The rounding-aware upper bound (before slack).
    pub rounded_upper_tuples: f64,
    /// The slack factor applied to the upper bound.
    pub slack: f64,
    /// The simulated max per-server tuples received.
    pub simulated_max_tuples: u64,
    /// `simulated ≥ lower` (must always hold; a violation is a bug).
    pub lower_ok: bool,
    /// `simulated ≤ rounded_upper · slack`.
    pub upper_ok: bool,
}

impl BracketVerdict {
    /// True when the simulated load sits inside the bracket.
    pub fn ok(&self) -> bool {
        self.lower_ok && self.upper_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn cycle_closed_forms() {
        // C_k: τ* = ρ* = k/2, e = 0.
        for k in [3usize, 4, 5, 6] {
            let b = OutputSensitiveBounds::compute(&families::cycle(k), 1000, 8, 64).unwrap();
            assert_eq!(b.tau_star, r(k as i128, 2));
            assert_eq!(b.rho_star, r(k as i128, 2));
            assert_eq!(b.answer_exponent, 0);
            let inv = r(2, k as i128);
            assert_eq!(
                b.lower,
                LoadExpr {
                    coeff: Rational::ONE,
                    n_exp: Rational::ZERO,
                    m_exp: inv,
                    p_exp: Rational::ZERO - inv
                }
            );
            assert_eq!(
                b.matching_lower,
                LoadExpr {
                    coeff: Rational::ONE,
                    n_exp: Rational::ONE,
                    m_exp: inv,
                    p_exp: Rational::ZERO - inv
                }
            );
            assert_eq!(b.upper.coeff, r(k as i128, 1));
        }
        // C3 at (n, m, p) = (1000, 1000, 8): lower = (1000/8)^(2/3) = 25.
        let b = OutputSensitiveBounds::compute(&families::cycle(3), 1000, 1000, 8).unwrap();
        close(b.lower_tuples, 25.0);
    }

    #[test]
    fn star_closed_forms() {
        // T_k: τ* = 1, ρ* = k, e = 1. The matching-expectation bound is
        // exactly m/p; the emission bound is (m/p)^(1/k).
        for k in [2usize, 3, 5] {
            let b = OutputSensitiveBounds::compute(&families::star(k), 500, 400, 16).unwrap();
            assert_eq!(b.tau_star, Rational::ONE);
            assert_eq!(b.rho_star, r(k as i128, 1));
            assert_eq!(b.answer_exponent, 1);
            assert_eq!(b.matching_lower.n_exp, Rational::ZERO);
            assert_eq!(b.matching_lower.m_exp, Rational::ONE);
            close(b.matching_lower_tuples, 400.0 / 16.0);
            close(b.lower_tuples, (400.0 / 16.0f64).powf(1.0 / k as f64));
        }
    }

    #[test]
    fn chain_closed_forms() {
        // L_k: τ* = ⌈k/2⌉ but ρ* = ⌊k/2⌋ + 1 — the two coincide only for
        // odd chains (an even chain's far endpoint needs one extra cover
        // unit), which is exactly why the emission bound needs the edge
        // cover and not the packing.
        for k in [3usize, 4, 5, 8] {
            let b = OutputSensitiveBounds::compute(&families::chain(k), 1000, 1000, 16).unwrap();
            assert_eq!(b.tau_star, r(k.div_ceil(2) as i128, 1));
            assert_eq!(b.rho_star, r((k / 2 + 1) as i128, 1));
            assert_eq!(b.answer_exponent, 1);
        }
    }

    #[test]
    fn full_output_recovers_conference_bound() {
        // At m = E[|q|] = n^e the matching-expectation bound equals
        // n / p^(1/τ*) exactly.
        for (q, e) in [(families::chain(5), 1i32), (families::star(3), 1), (families::cycle(4), 0)]
        {
            let n = 4096u64;
            let m = (n as f64).powi(e) as u64;
            let b = OutputSensitiveBounds::compute(&q, n, m, 64).unwrap();
            let tau = b.tau_star.to_f64();
            close(b.matching_lower_tuples, n as f64 / 64f64.powf(1.0 / tau));
        }
    }

    #[test]
    fn bounds_are_monotone_in_m() {
        let q = families::cycle(3);
        let mut prev = 0.0;
        for m in [0u64, 10, 100, 1000] {
            let b = OutputSensitiveBounds::compute(&q, 1000, m, 27).unwrap();
            assert!(b.lower_tuples >= prev);
            prev = b.lower_tuples;
        }
        // m = 0: no emission obligation at all.
        let b = OutputSensitiveBounds::compute(&q, 1000, 0, 27).unwrap();
        assert_eq!(b.lower_tuples, 0.0);
        assert_eq!(b.output_lower_per_server, 0.0);
    }

    #[test]
    fn rounded_upper_accounts_for_integer_shares() {
        // C3 on p = 64: shares (4,4,4), every atom replicated 4× over 64
        // cells, so the rounding-aware upper is 3·n·4/64 = 187.5 for
        // n = 1000 — within a whisker of the fractional ℓ·n/p^(2/3).
        let q = families::triangle();
        let alloc = ShareAllocation::optimal(&q, 64).unwrap();
        let b = OutputSensitiveBounds::compute(&q, 1000, 1, 64).unwrap();
        let rounded = b.rounded_upper_tuples(&q, &alloc).unwrap();
        close(rounded, 187.5);
        close(b.upper_tuples, 3.0 * 1000.0 / 64f64.powf(2.0 / 3.0));
    }

    #[test]
    fn bracket_verdicts() {
        let q = families::triangle();
        let alloc = ShareAllocation::optimal(&q, 64).unwrap();
        let b = OutputSensitiveBounds::compute(&q, 1000, 1000, 64).unwrap();
        let good = b.bracket(&q, &alloc, 200, 2.0).unwrap();
        assert!(good.ok(), "{good:?}");
        // Below the emission bound: physically impossible for a correct run.
        let too_low = b.bracket(&q, &alloc, 1, 2.0).unwrap();
        assert!(!too_low.lower_ok && !too_low.ok());
        // Far above the rounded upper (even with slack): overload.
        let too_high = b.bracket(&q, &alloc, 10_000, 2.0).unwrap();
        assert!(!too_high.upper_ok && !too_high.ok());
    }

    #[test]
    fn load_expr_display_and_eval() {
        let e = LoadExpr {
            coeff: r(3, 1),
            n_exp: Rational::ONE,
            m_exp: Rational::ZERO,
            p_exp: r(-2, 3),
        };
        assert_eq!(e.to_string(), "3·n·p^(-2/3)");
        close(e.eval(1000, 5, 8), 3.0 * 1000.0 / 4.0);
        let unit = LoadExpr {
            coeff: Rational::ONE,
            n_exp: Rational::ZERO,
            m_exp: Rational::ZERO,
            p_exp: Rational::ZERO,
        };
        assert_eq!(unit.to_string(), "1");
        assert_eq!(unit.eval(0, 0, 1), 1.0);
    }
}
