//! **mpc-core** — the algorithms and bounds of *Beame, Koutris & Suciu,
//! "Communication Steps for Parallel Query Processing" (PODS 2013)*.
//!
//! Built on the substrates of this workspace (`mpc-cq` queries, `mpc-lp`
//! exact LPs, `mpc-storage` relations, `mpc-data` generators and `mpc-sim`
//! — the MPC cluster simulator), this crate provides the paper's actual
//! contributions:
//!
//! * [`shares`] — HyperCube *share exponents* `e_i = v_i / τ` read off an
//!   optimal fractional vertex cover, and their integer rounding to actual
//!   per-variable shares `p_i` with `∏ p_i ≤ p` (Section 3.1).
//! * [`hypercube`] — the **HyperCube (HC) algorithm**: the one-round
//!   MPC(ε) program that routes every base tuple to all hypercube cells
//!   consistent with its hashed coordinates and joins locally
//!   (Proposition 3.2), plus the *partial-answer* variant run below the
//!   space exponent (Proposition 3.11).
//! * [`baseline`] — broadcast and single-key shuffle joins expressed as MPC
//!   programs, for load comparisons.
//! * [`space_exponent`] — `ε*(q) = 1 − 1/τ*(q)` and the one-round class
//!   `Γ¹_ε` (Theorem 1.1, Corollary 3.10).
//! * [`multiround`] — multi-round query plans (`Γ^r_ε`, Lemma 4.3 /
//!   Example 4.2), their execution on the simulator, the round lower
//!   bounds from ε-good sets and (ε,r)-plans (Definition 4.4,
//!   Theorem 4.5, Corollary 4.8, Lemma 4.9), and the journal version's
//!   per-round load predictions ([`multiround::load`]).
//! * [`output_sensitive`] — the journal version's output-sensitive load
//!   bounds parameterised by `(n, m, p)` (arXiv:1602.06236), with exact
//!   rational exponents read off the LP duals.
//! * [`wco`] — the **worst-case optimal** multi-round strategy of BKS
//!   2018 (arXiv:1604.01848): heavy/light split by degree threshold,
//!   broadcast-join rounds for the heavy patterns, the skew-free
//!   HyperCube for the light side — load `Õ(n/p^{1/ρ*})` on *every*
//!   database in O(1) rounds, beating the one-round `n/p^{1/τ*}` on
//!   cycles and cliques.
//! * [`analysis`] — the one-stop [`analysis::QueryAnalysis`] report used by
//!   the Table 1 / Table 2 reproduction binaries.
//!
//! # Quick start
//!
//! ```
//! use mpc_core::prelude::*;
//!
//! // The triangle query C3 has τ* = 3/2, hence space exponent 1/3.
//! let q = mpc_cq::families::triangle();
//! let analysis = QueryAnalysis::analyze(&q).unwrap();
//! assert_eq!(analysis.space_exponent, Rational::new(1, 3));
//!
//! // Run HyperCube on 8 servers over a random matching database.
//! let db = mpc_data::matching_database(&q, 500, 42);
//! let outcome = HyperCube::run(&q, &db, &MpcConfig::new(8, 1.0 / 3.0)).unwrap();
//! let expected = mpc_storage::join::evaluate(&q, &db).unwrap();
//! assert!(outcome.result.output.same_tuples(&expected));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod error;
pub mod friedgut;
pub mod hypercube;
pub mod multiround;
pub mod output_sensitive;
pub mod shares;
pub mod space_exponent;
pub mod wco;

pub use error::CoreError;

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Commonly used items, re-exported for downstream crates and examples.
pub mod prelude {
    pub use crate::analysis::QueryAnalysis;
    pub use crate::hypercube::{HyperCube, PartialHyperCube};
    pub use crate::multiround::executor::PlanProgram;
    pub use crate::multiround::load::PlanLoadPrediction;
    pub use crate::multiround::planner::MultiRoundPlan;
    pub use crate::output_sensitive::OutputSensitiveBounds;
    pub use crate::shares::ShareAllocation;
    pub use crate::space_exponent::{gamma_one_contains, space_exponent};
    pub use crate::wco::{PlannerChoice, WcoLoadPrediction, WcoProgram, WorstCaseOptimalPlan};
    pub use mpc_lp::Rational;
    pub use mpc_sim::{Cluster, MpcConfig};
}
