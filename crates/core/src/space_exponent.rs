//! Space exponents and the one-round class `Γ¹_ε` (Theorem 1.1,
//! Corollary 3.10, Section 4.1).
//!
//! The *space exponent* of a query is the smallest `ε` for which it can be
//! computed in a single round of MPC(ε); over matching databases it equals
//! `ε*(q) = 1 − 1/τ*(q)` where `τ*` is the fractional covering number. The
//! class `Γ¹_ε` consists of the connected queries with
//! `τ*(q) ≤ 1/(1 − ε)` — exactly those computable in one round at space
//! exponent `ε` — and is the building block of the multi-round classes
//! `Γ^r_ε`.

use mpc_cq::Query;
use mpc_lp::cover::tau_star;
use mpc_lp::Rational;

use crate::error::CoreError;
use crate::Result;

/// The fractional covering number `τ*(q)`.
///
/// # Errors
///
/// Propagates LP errors.
pub fn covering_number(q: &Query) -> Result<Rational> {
    Ok(tau_star(q)?)
}

/// The space exponent `ε*(q) = 1 − 1/τ*(q)` of a query (Theorem 1.1): the
/// smallest `ε` at which one round suffices over matching databases.
///
/// # Errors
///
/// Propagates LP errors.
pub fn space_exponent(q: &Query) -> Result<Rational> {
    let tau = covering_number(q)?;
    Ok(Rational::ONE - tau.recip()?)
}

/// The space exponent after dropping unary atoms.
///
/// Over matching databases every unary relation is the full domain
/// `{1, …, n}` and is known to every server for free, so the paper removes
/// unary atoms before the one-round analysis (footnote in Section 3.2).
///
/// # Errors
///
/// Propagates LP errors; returns [`CoreError::Unsupported`] if *all* atoms
/// are unary (the query is then trivial).
pub fn space_exponent_without_unary(q: &Query) -> Result<Rational> {
    let keep: Vec<_> =
        q.atom_ids().filter(|a| q.atom(*a).map(|at| at.arity() > 1).unwrap_or(false)).collect();
    if keep.is_empty() {
        return Err(CoreError::Unsupported(
            "query consists only of unary atoms; it is trivial on matching databases".to_string(),
        ));
    }
    if keep.len() == q.num_atoms() {
        return space_exponent(q);
    }
    let stripped = q.induced_subquery(&keep)?;
    space_exponent(&stripped)
}

/// Membership in `Γ¹_ε`: is the connected query computable in one round at
/// space exponent `ε`, i.e. is `τ*(q) ≤ 1/(1 − ε)`?
///
/// `ε = 1` is degenerate (everything fits); `ε` is given as an exact
/// rational.
///
/// # Errors
///
/// Propagates LP errors.
pub fn gamma_one_contains(q: &Query, epsilon: Rational) -> Result<bool> {
    if epsilon >= Rational::ONE {
        return Ok(true);
    }
    if epsilon.is_negative() {
        return Err(CoreError::InvalidPlan(format!("ε must be ≥ 0, got {epsilon}")));
    }
    let tau = covering_number(q)?;
    let threshold = (Rational::ONE - epsilon).recip()?;
    Ok(tau <= threshold)
}

/// `kε = 2 ⌊1/(1−ε)⌋`: the longest chain query in `Γ¹_ε` (Example 4.2).
/// Multi-round plans for chains use `L_{kε}` as their one-round operator.
///
/// # Panics
///
/// Panics if `ε ≥ 1` (degenerate).
pub fn k_epsilon(epsilon: Rational) -> usize {
    assert!(epsilon < Rational::ONE, "ε must be < 1");
    let inv = (Rational::ONE - epsilon).recip().expect("1 − ε > 0");
    (2 * inv.floor()) as usize
}

/// `mε = ⌊2/(1−ε)⌋`: the longest cycle query in `Γ¹_ε` (Lemma 4.9).
///
/// # Panics
///
/// Panics if `ε ≥ 1` (degenerate).
pub fn m_epsilon(epsilon: Rational) -> usize {
    assert!(epsilon < Rational::ONE, "ε must be < 1");
    let ratio = Rational::new(2, 1).checked_div(&(Rational::ONE - epsilon)).expect("1 − ε > 0");
    ratio.floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn table_1_space_exponents() {
        // Ck: 1 − 2/k.
        assert_eq!(space_exponent(&families::cycle(3)).unwrap(), r(1, 3));
        assert_eq!(space_exponent(&families::cycle(4)).unwrap(), r(1, 2));
        assert_eq!(space_exponent(&families::cycle(5)).unwrap(), r(3, 5));
        // Tk: 0.
        assert_eq!(space_exponent(&families::star(5)).unwrap(), Rational::ZERO);
        // Lk: 1 − 1/⌈k/2⌉.
        assert_eq!(space_exponent(&families::chain(2)).unwrap(), Rational::ZERO);
        assert_eq!(space_exponent(&families::chain(3)).unwrap(), r(1, 2));
        assert_eq!(space_exponent(&families::chain(5)).unwrap(), r(2, 3));
        // B(k,m): 1 − m/k.
        assert_eq!(space_exponent(&families::binomial(4, 2).unwrap()).unwrap(), r(1, 2));
        // SPk: 1 − 1/k.
        assert_eq!(space_exponent(&families::spoke(3)).unwrap(), r(2, 3));
    }

    #[test]
    fn corollary_3_10_zero_space_exponent() {
        // ε* = 0 iff a variable occurs in every atom.
        for q in [families::star(4), families::chain(2), families::chain(1)] {
            assert_eq!(space_exponent(&q).unwrap(), Rational::ZERO, "{}", q.name());
            assert!(q.has_variable_in_all_atoms());
        }
        for q in [families::chain(3), families::cycle(3), families::spoke(2)] {
            assert!(space_exponent(&q).unwrap().is_positive(), "{}", q.name());
            assert!(!q.has_variable_in_all_atoms());
        }
    }

    #[test]
    fn gamma_one_membership() {
        // Γ¹_0 = queries with τ* = 1.
        assert!(gamma_one_contains(&families::chain(2), Rational::ZERO).unwrap());
        assert!(!gamma_one_contains(&families::chain(3), Rational::ZERO).unwrap());
        // Γ¹_{1/2} = τ* ≤ 2: contains L4 and C4 but not L5 or C5.
        let half = r(1, 2);
        assert!(gamma_one_contains(&families::chain(4), half).unwrap());
        assert!(gamma_one_contains(&families::cycle(4), half).unwrap());
        assert!(!gamma_one_contains(&families::chain(5), half).unwrap());
        assert!(!gamma_one_contains(&families::cycle(5), half).unwrap());
        // ε = 1 is degenerate: everything is one-round computable.
        assert!(gamma_one_contains(&families::cycle(9), Rational::ONE).unwrap());
        // Negative ε is rejected.
        assert!(gamma_one_contains(&families::cycle(3), r(-1, 2)).is_err());
    }

    #[test]
    fn query_is_in_gamma_one_at_its_space_exponent() {
        for q in [
            families::chain(3),
            families::chain(6),
            families::cycle(5),
            families::binomial(3, 2).unwrap(),
            families::spoke(2),
        ] {
            let eps = space_exponent(&q).unwrap();
            assert!(gamma_one_contains(&q, eps).unwrap(), "{} at its ε*", q.name());
            // Strictly below ε* it is not (unless ε* = 0).
            if eps.is_positive() {
                let below = eps - r(1, 1000);
                assert!(!gamma_one_contains(&q, below).unwrap(), "{} below ε*", q.name());
            }
        }
    }

    #[test]
    fn k_and_m_epsilon_values() {
        // ε = 0: kε = 2, mε = 2.
        assert_eq!(k_epsilon(Rational::ZERO), 2);
        assert_eq!(m_epsilon(Rational::ZERO), 2);
        // ε = 1/2: kε = 4, mε = 4.
        assert_eq!(k_epsilon(r(1, 2)), 4);
        assert_eq!(m_epsilon(r(1, 2)), 4);
        // ε = 2/3: kε = 6, mε = 6.
        assert_eq!(k_epsilon(r(2, 3)), 6);
        assert_eq!(m_epsilon(r(2, 3)), 6);
        // ε = 1/3: 1/(1−ε) = 3/2 → kε = 2, mε = 3.
        assert_eq!(k_epsilon(r(1, 3)), 2);
        assert_eq!(m_epsilon(r(1, 3)), 3);
    }

    #[test]
    fn k_epsilon_matches_longest_chain_in_gamma_one() {
        for eps in [Rational::ZERO, r(1, 3), r(1, 2), r(2, 3)] {
            let k = k_epsilon(eps);
            assert!(
                gamma_one_contains(&families::chain(k), eps).unwrap(),
                "L{k} should be in Γ¹ at ε = {eps}"
            );
            assert!(
                !gamma_one_contains(&families::chain(k + 1), eps).unwrap(),
                "L{} should not be in Γ¹ at ε = {eps}",
                k + 1
            );
        }
    }

    #[test]
    fn m_epsilon_matches_longest_cycle_in_gamma_one() {
        for eps in [Rational::ZERO, r(1, 2), r(2, 3)] {
            let m = m_epsilon(eps);
            assert!(
                gamma_one_contains(&families::cycle(m.max(2)), eps).unwrap(),
                "C{m} should be in Γ¹ at ε = {eps}"
            );
            assert!(
                !gamma_one_contains(&families::cycle(m + 1), eps).unwrap(),
                "C{} should not be in Γ¹ at ε = {eps}",
                m + 1
            );
        }
    }

    #[test]
    fn unary_stripping() {
        // The witness query has τ* = 3 with its unary atoms, but the
        // one-round analysis strips R and T, leaving L3 with ε* = 1/2.
        let q = families::witness_query();
        assert_eq!(space_exponent(&q).unwrap(), r(2, 3));
        assert_eq!(space_exponent_without_unary(&q).unwrap(), r(1, 2));
        // A query of only unary atoms is rejected.
        let trivial = mpc_cq::Query::new("t", vec![("R", vec!["x"])]).unwrap();
        assert!(space_exponent_without_unary(&trivial).is_err());
        // Queries with no unary atoms are unchanged.
        let c3 = families::cycle(3);
        assert_eq!(space_exponent_without_unary(&c3).unwrap(), space_exponent(&c3).unwrap());
    }
}
