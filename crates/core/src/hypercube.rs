//! The HyperCube (HC) algorithm (Section 3.1) and its partial-answer
//! variant (Proposition 3.11).
//!
//! The `p` servers are identified with the cells of the hypercube
//! `[p₁] × ⋯ × [p_k]` given by the share allocation. Each variable `xᵢ`
//! gets an independent hash function `hᵢ : [n] → [pᵢ]`. During the single
//! communication round, the input server of relation `Sⱼ` sends each tuple
//! to every cell that agrees with the tuple's hashed coordinates on the
//! variables of `Sⱼ` (the other coordinates are free — that is the
//! replication). Every potential output tuple `(a₁,…,a_k)` is then fully
//! known by the cell `(h₁(a₁),…,h_k(a_k))`, so computing the query locally
//! at every server finds all answers.
//!
//! On a matching database the per-server load is `O(n / p^{1/τ})` with high
//! probability, i.e. space exponent `ε = 1 − 1/τ` (Proposition 3.2); with
//! the optimal fractional vertex cover this matches the lower bound of
//! Theorem 3.3.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use mpc_cq::{Atom, Query};
use mpc_lp::Rational;
use mpc_sim::program::hash_value;
use mpc_sim::{Cluster, MpcConfig, MpcProgram, Routed, RunResult, ServerState};
use mpc_storage::{Database, Relation, Tuple};

use crate::error::CoreError;
use crate::shares::ShareAllocation;
use crate::space_exponent::space_exponent;
use crate::Result;

/// The one-round HyperCube program: an [`MpcProgram`] that can be run on
/// any [`Cluster`].
#[derive(Debug, Clone)]
pub struct HyperCubeProgram {
    query: Query,
    allocation: ShareAllocation,
    /// Per-variable hash seeds (`hᵢ`).
    seeds: Vec<u64>,
}

impl HyperCubeProgram {
    /// Build the program with the optimal share allocation for `p` servers.
    ///
    /// ```
    /// use mpc_core::hypercube::HyperCubeProgram;
    ///
    /// // The triangle query C3 has cover (1/2, 1/2, 1/2), so on p = 64
    /// // servers every variable gets share 64^(1/3) = 4.
    /// let q = mpc_cq::families::triangle();
    /// let program = HyperCubeProgram::new(&q, 64, 42).unwrap();
    /// assert_eq!(program.allocation().shares, vec![4, 4, 4]);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates LP/allocation errors.
    pub fn new(query: &Query, p: usize, seed: u64) -> Result<Self> {
        let allocation = ShareAllocation::optimal(query, p)?;
        Ok(Self::with_allocation(query, allocation, seed))
    }

    /// Build the program from an explicit share allocation.
    pub fn with_allocation(query: &Query, allocation: ShareAllocation, seed: u64) -> Self {
        let seeds = derive_seeds(seed, query.num_vars());
        HyperCubeProgram { query: query.clone(), allocation, seeds }
    }

    /// The share allocation in use.
    pub fn allocation(&self) -> &ShareAllocation {
        &self.allocation
    }

    /// The hypercube cell coordinates (one per query variable) that a tuple
    /// of `atom` determines: `Some(coord)` for the atom's variables, `None`
    /// (free) for the others. Returns `None` for tuples that disagree on a
    /// repeated variable (they can never contribute to an answer).
    fn partial_coordinates(&self, atom: &Atom, tuple: &Tuple) -> Option<Vec<Option<usize>>> {
        let mut partial: Vec<Option<usize>> = vec![None; self.query.num_vars()];
        for (pos, var) in atom.vars.iter().enumerate() {
            let value = tuple.values()[pos];
            let coord = hash_value(self.seeds[var.0], value, self.allocation.share(*var).max(1));
            match partial[var.0] {
                None => partial[var.0] = Some(coord),
                Some(existing) => {
                    // Repeated variable: require equal values (hence equal
                    // coordinates); unequal values never join.
                    let first_pos = atom.vars.iter().position(|w| w == var).expect("var occurs");
                    if tuple.values()[first_pos] != value {
                        return None;
                    }
                    debug_assert_eq!(existing, coord);
                }
            }
        }
        Some(partial)
    }

    /// Destination servers of one tuple of `atom`.
    pub fn destinations(&self, atom: &Atom, tuple: &Tuple) -> Vec<usize> {
        match self.partial_coordinates(atom, tuple) {
            Some(partial) => self.allocation.consistent_cells(&partial),
            None => Vec::new(),
        }
    }
}

impl MpcProgram for HyperCubeProgram {
    fn num_rounds(&self) -> usize {
        1
    }

    fn route_input(&self, relation: &Relation, _p: usize) -> mpc_sim::Result<Vec<Routed>> {
        let Some((_, atom)) = self.query.atom_by_name(relation.name()) else {
            // Relations not mentioned by the query are simply not shuffled.
            return Ok(Vec::new());
        };
        Ok(relation
            .iter()
            .map(|t| Routed::new(relation.name(), t.clone(), self.destinations(atom, t)))
            .collect())
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        _state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        Ok(Vec::new())
    }

    fn output(&self, _server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        // A cell may have received nothing from some relation; it then has
        // no answers.
        for atom in self.query.atoms() {
            if state.relation(&atom.name).is_none() {
                return Ok(Relation::empty(self.query.name(), self.query.num_vars()));
            }
        }
        let db = state.as_database();
        Ok(mpc_storage::join::evaluate(&self.query, &db)?)
    }

    fn output_name(&self) -> String {
        self.query.name().to_string()
    }

    fn output_arity(&self) -> usize {
        self.query.num_vars()
    }
}

/// Convenience entry point: run HyperCube end to end on a database and
/// return both the simulator result and the allocation that was used.
#[derive(Debug, Clone)]
pub struct HyperCube;

/// The outcome of a HyperCube run.
#[derive(Debug, Clone)]
pub struct HyperCubeOutcome {
    /// Simulator output and per-round statistics.
    pub result: RunResult,
    /// The share allocation used.
    pub allocation: ShareAllocation,
    /// The space exponent `1 − 1/τ*` of the query (what ε the algorithm
    /// needs to stay within budget on matching databases).
    pub space_exponent: Rational,
}

impl HyperCube {
    /// Run the HC algorithm for `q` on `db` under the given configuration
    /// with a default seed.
    ///
    /// # Errors
    ///
    /// Propagates allocation, configuration and simulation errors.
    pub fn run(q: &Query, db: &Database, config: &MpcConfig) -> Result<HyperCubeOutcome> {
        Self::run_seeded(q, db, config, 0x5EED)
    }

    /// Run the HC algorithm with an explicit hash seed.
    ///
    /// # Errors
    ///
    /// Propagates allocation, configuration and simulation errors.
    pub fn run_seeded(
        q: &Query,
        db: &Database,
        config: &MpcConfig,
        seed: u64,
    ) -> Result<HyperCubeOutcome> {
        let program = HyperCubeProgram::new(q, config.p, seed)?;
        let allocation = program.allocation().clone();
        let cluster = Cluster::new(config.clone())?;
        let result = cluster.run(&program, db)?;
        Ok(HyperCubeOutcome { result, allocation, space_exponent: space_exponent(q)? })
    }
}

/// The partial-answer HyperCube of Proposition 3.11: run *below* the space
/// exponent (`ε < 1 − 1/τ*`), where the full hypercube would need
/// `p^{(1−ε)τ*} > p` cells. A uniformly random subset of `p` cells is
/// materialised on the `p` servers; tuples are routed only to materialised
/// cells, so each potential answer is reported with probability
/// `p / p^{(1−ε)τ*} = 1 / p^{(1−ε)τ* − 1}` — exactly the fraction that
/// Theorem 3.3 proves to be optimal.
#[derive(Debug, Clone)]
pub struct PartialHyperCubeProgram {
    query: Query,
    allocation: ShareAllocation,
    seeds: Vec<u64>,
    /// Sorted list of materialised cells; index in this list = server id.
    chosen_cells: Vec<usize>,
}

impl PartialHyperCubeProgram {
    /// Build the partial program for `p` servers at space exponent
    /// `epsilon` (as an exact rational, e.g. `0` or `1/4`).
    ///
    /// # Errors
    ///
    /// Propagates allocation errors; rejects `ε ≥ 1`.
    pub fn new(query: &Query, p: usize, epsilon: Rational, seed: u64) -> Result<Self> {
        if epsilon >= Rational::ONE {
            return Err(CoreError::InvalidPlan("ε must be < 1 for the partial HC".to_string()));
        }
        let one_minus_eps = Rational::ONE - epsilon;
        let allocation = ShareAllocation::scaled(query, p, one_minus_eps)?;
        let total_cells = allocation.num_cells();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let chosen_cells: Vec<usize> = if total_cells <= p {
            (0..total_cells).collect()
        } else {
            // Uniform sample of p distinct cells.
            rand::seq::index::sample(&mut rng, total_cells, p).into_vec()
        };
        let mut chosen_cells = chosen_cells;
        chosen_cells.sort_unstable();
        let seeds = derive_seeds(seed, query.num_vars());
        Ok(PartialHyperCubeProgram { query: query.clone(), allocation, seeds, chosen_cells })
    }

    /// Total number of cells of the (virtual) hypercube.
    pub fn total_cells(&self) -> usize {
        self.allocation.num_cells()
    }

    /// The fraction of potential answers this program is expected to
    /// report: `(number of materialised cells) / (total cells)`.
    pub fn expected_fraction(&self) -> f64 {
        self.chosen_cells.len() as f64 / self.total_cells().max(1) as f64
    }

    fn cell_to_server(&self, cell: usize) -> Option<usize> {
        self.chosen_cells.binary_search(&cell).ok()
    }

    fn destinations(&self, atom: &Atom, tuple: &Tuple) -> Vec<usize> {
        let mut partial: Vec<Option<usize>> = vec![None; self.query.num_vars()];
        for (pos, var) in atom.vars.iter().enumerate() {
            let value = tuple.values()[pos];
            let coord = hash_value(self.seeds[var.0], value, self.allocation.share(*var).max(1));
            partial[var.0] = Some(coord);
        }
        self.allocation
            .consistent_cells(&partial)
            .into_iter()
            .filter_map(|cell| self.cell_to_server(cell))
            .collect()
    }
}

impl MpcProgram for PartialHyperCubeProgram {
    fn num_rounds(&self) -> usize {
        1
    }

    fn route_input(&self, relation: &Relation, _p: usize) -> mpc_sim::Result<Vec<Routed>> {
        let Some((_, atom)) = self.query.atom_by_name(relation.name()) else {
            return Ok(Vec::new());
        };
        Ok(relation
            .iter()
            .map(|t| Routed::new(relation.name(), t.clone(), self.destinations(atom, t)))
            .collect())
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        _state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        Ok(Vec::new())
    }

    fn output(&self, _server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        for atom in self.query.atoms() {
            if state.relation(&atom.name).is_none() {
                return Ok(Relation::empty(self.query.name(), self.query.num_vars()));
            }
        }
        let db = state.as_database();
        Ok(mpc_storage::join::evaluate(&self.query, &db)?)
    }

    fn output_name(&self) -> String {
        self.query.name().to_string()
    }

    fn output_arity(&self) -> usize {
        self.query.num_vars()
    }
}

/// The outcome of a partial HyperCube run.
#[derive(Debug, Clone)]
pub struct PartialOutcome {
    /// Simulator output and statistics (the output is a *subset* of the
    /// true answers).
    pub result: RunResult,
    /// The fraction of answers the program expects to report.
    pub expected_fraction: f64,
    /// Number of cells of the virtual hypercube.
    pub total_cells: usize,
}

/// Convenience runner for the partial-answer HyperCube.
#[derive(Debug, Clone)]
pub struct PartialHyperCube;

impl PartialHyperCube {
    /// Run the partial HC for `q` on `db` with `p` servers at space
    /// exponent `epsilon` (< `1 − 1/τ*` to be meaningful).
    ///
    /// # Errors
    ///
    /// Propagates allocation, configuration and simulation errors.
    pub fn run(
        q: &Query,
        db: &Database,
        p: usize,
        epsilon: Rational,
        seed: u64,
    ) -> Result<PartialOutcome> {
        let program = PartialHyperCubeProgram::new(q, p, epsilon, seed)?;
        let expected_fraction = program.expected_fraction();
        let total_cells = program.total_cells();
        let config = MpcConfig::new(p, epsilon.to_f64().clamp(0.0, 1.0));
        let cluster = Cluster::new(config)?;
        let result = cluster.run(&program, db)?;
        Ok(PartialOutcome { result, expected_fraction, total_cells })
    }
}

/// Derive `k` independent per-variable seeds from one master seed.
fn derive_seeds(seed: u64, k: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen()).collect()
}

/// Shuffle helper used in tests and ablations: a random permutation of
/// `0..n` derived from a seed.
pub fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    v.shuffle(&mut rng);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_storage::join::evaluate;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn triangle_hypercube_is_correct_and_balanced() {
        // Example 3.1: C3 on p = 64 with ε = 1/3.
        let q = families::triangle();
        let db = matching_database(&q, 2000, 11);
        let config = MpcConfig::new(64, 1.0 / 3.0);
        let outcome = HyperCube::run(&q, &db, &config).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
        assert_eq!(outcome.space_exponent, r(1, 3));
        // Replication rate ≈ p^{1/3} = 4.
        let rate = outcome.result.rounds[0].replication_rate;
        assert!(rate > 3.0 && rate < 5.0, "replication rate {rate}");
        // Within the ε = 1/3 budget.
        assert!(outcome.result.within_budget());
    }

    #[test]
    fn chain_l2_hypercube_no_replication() {
        let q = families::chain(2);
        let db = matching_database(&q, 3000, 3);
        let config = MpcConfig::new(32, 0.0);
        let outcome = HyperCube::run(&q, &db, &config).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&expected));
        assert!((outcome.result.rounds[0].replication_rate - 1.0).abs() < 1e-9);
        assert!(outcome.result.within_budget());
        assert_eq!(outcome.space_exponent, Rational::ZERO);
    }

    #[test]
    fn star_query_hypercube() {
        let q = families::star(3);
        let db = matching_database(&q, 1000, 5);
        let outcome = HyperCube::run(&q, &db, &MpcConfig::new(16, 0.0)).unwrap();
        let expected = evaluate(&q, &db).unwrap();
        assert_eq!(expected.len(), 1000);
        assert!(outcome.result.output.same_tuples(&expected));
        assert!(outcome.result.within_budget());
    }

    #[test]
    fn longer_chain_and_cycle_are_correct() {
        for q in [families::chain(4), families::cycle(4)] {
            let db = matching_database(&q, 600, 17);
            let eps = space_exponent(&q).unwrap().to_f64();
            let outcome = HyperCube::run(&q, &db, &MpcConfig::new(27, eps)).unwrap();
            let expected = evaluate(&q, &db).unwrap();
            assert!(
                outcome.result.output.same_tuples(&expected),
                "HC output mismatch for {}",
                q.name()
            );
        }
    }

    #[test]
    fn cartesian_product_uses_square_grid() {
        // The introduction's drug-interaction example: q(x,y) = R(x), S(y)
        // is solved by HC with shares (√p, √p).
        let q = mpc_cq::Query::new("CP", vec![("R", vec!["x"]), ("S", vec!["y"])]).unwrap();
        let db = matching_database(&q, 200, 23);
        let outcome = HyperCube::run(&q, &db, &MpcConfig::new(16, 0.5)).unwrap();
        assert_eq!(outcome.allocation.shares, vec![4, 4]);
        let expected = evaluate(&q, &db).unwrap();
        assert_eq!(expected.len(), 200 * 200);
        assert!(outcome.result.output.same_tuples(&expected));
    }

    #[test]
    fn destinations_replicate_along_free_dimensions() {
        let q = families::triangle();
        let program = HyperCubeProgram::new(&q, 27, 1).unwrap();
        let (_, atom) = q.atom_by_name("S1").unwrap();
        let dests = program.destinations(atom, &Tuple::from([5, 9]));
        // S1(x1,x2) leaves x3 free: exactly p^{1/3} = 3 destinations.
        assert_eq!(dests.len(), 3);
        // Deterministic.
        assert_eq!(dests, program.destinations(atom, &Tuple::from([5, 9])));
    }

    #[test]
    fn unknown_relation_is_ignored_by_routing() {
        let q = families::chain(2);
        let program = HyperCubeProgram::new(&q, 8, 1).unwrap();
        let junk = Relation::from_tuples("Junk", 2, vec![[1u64, 2]]).unwrap();
        assert!(program.route_input(&junk, 8).unwrap().is_empty());
    }

    #[test]
    fn partial_hypercube_reports_predicted_fraction() {
        // L3 (τ* = 2) forced to one round at ε = 0 on p servers can only
        // report ≈ 1/p of the n answers (Theorem 3.3 / Prop 3.11).
        let q = families::chain(3);
        let n = 4000u64;
        let p = 16usize;
        let db = matching_database(&q, n, 31);
        let outcome = PartialHyperCube::run(&q, &db, p, Rational::ZERO, 9).unwrap();
        let reported = outcome.result.output.len() as f64;
        let expected_total = n as f64;
        let predicted = outcome.expected_fraction * expected_total;
        assert!(outcome.expected_fraction < 0.2, "fraction {}", outcome.expected_fraction);
        // Within a factor of 2.5 of the prediction (randomness of the hash).
        assert!(
            reported <= 2.5 * predicted + 10.0 && reported * 2.5 + 10.0 >= predicted,
            "reported {reported}, predicted {predicted}"
        );
        // All reported answers are genuine answers.
        let truth = evaluate(&q, &db).unwrap();
        for t in outcome.result.output.iter() {
            assert!(truth.contains(t));
        }
    }

    #[test]
    fn partial_hypercube_at_space_exponent_reports_everything() {
        // At ε = ε* the virtual hypercube has ≈ p cells, so (nearly) all
        // cells are materialised and (nearly) all answers are reported.
        let q = families::chain(2); // ε* = 0
        let db = matching_database(&q, 1000, 13);
        let outcome = PartialHyperCube::run(&q, &db, 16, Rational::ZERO, 5).unwrap();
        assert!(outcome.expected_fraction > 0.99);
        let truth = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth));
    }

    #[test]
    fn partial_hypercube_rejects_epsilon_one() {
        let q = families::chain(2);
        assert!(PartialHyperCubeProgram::new(&q, 4, Rational::ONE, 1).is_err());
    }

    #[test]
    fn seeded_permutation_is_a_permutation() {
        let p = seeded_permutation(100, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_eq!(p, seeded_permutation(100, 3));
        assert_ne!(p, seeded_permutation(100, 4));
    }
}
