//! HyperCube share exponents and integer shares (Section 3.1).
//!
//! Given a fractional vertex cover `v = (v₁, …, v_k)` of value
//! `τ = Σᵢ vᵢ`, the HyperCube algorithm assigns each variable the *share
//! exponent* `eᵢ = vᵢ / τ` (so `Σ eᵢ = 1`) and the *share* `pᵢ = p^{eᵢ}`.
//! The `p` servers are identified with the cells of the hypercube
//! `[p₁] × ⋯ × [p_k]`. Because every atom is covered
//! (`Σ_{i ∈ vars(Sⱼ)} eᵢ ≥ 1/τ`), each base tuple is replicated at most
//! `p^{1 − 1/τ}` times, giving per-server load `O(n / p^{1/τ})`
//! (Proposition 3.2).
//!
//! Real servers come in integer quantities, so the fractional shares
//! `p^{eᵢ}` must be rounded to integers with `∏ᵢ pᵢ ≤ p`; this module
//! provides a deterministic rounding that starts from the floor and
//! greedily grows the coordinate with the largest deficit. The rounding
//! ablation (experiment E8) quantifies the resulting load penalty.

use serde::Serialize;

use mpc_cq::{Query, VarId};
use mpc_lp::cover::VertexCover;
use mpc_lp::{QueryLps, Rational};

use crate::error::CoreError;
use crate::Result;

/// A complete share assignment for a query on `p` servers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShareAllocation {
    /// The fractional vertex cover the exponents were derived from.
    pub cover: Vec<Rational>,
    /// The cover value `τ` (not necessarily optimal if a custom cover was
    /// supplied).
    pub tau: Rational,
    /// Share exponents `eᵢ = vᵢ / τ`, summing to 1.
    pub exponents: Vec<Rational>,
    /// Integer shares `pᵢ ≥ 1` with `∏ pᵢ ≤ p`.
    pub shares: Vec<usize>,
    /// The number of servers the allocation was computed for.
    pub p: usize,
}

impl ShareAllocation {
    /// Compute the allocation from an *optimal* fractional vertex cover of
    /// the query.
    ///
    /// ```
    /// use mpc_core::shares::ShareAllocation;
    /// use mpc_lp::Rational;
    ///
    /// // Chain L2 = S1(x0,x1), S2(x1,x2): the optimal cover puts weight 1
    /// // on the join variable x1, so x1 receives the full hypercube and
    /// // the endpoints are not partitioned at all — the classic hash join.
    /// let q = mpc_cq::families::chain(2);
    /// let alloc = ShareAllocation::optimal(&q, 16).unwrap();
    /// assert_eq!(alloc.exponents, vec![Rational::ZERO, Rational::ONE, Rational::ZERO]);
    /// assert_eq!(alloc.shares, vec![1, 16, 1]);
    /// assert_eq!(Rational::sum(alloc.exponents.iter()).unwrap(), Rational::ONE);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates LP errors; also rejects `p == 0`.
    pub fn optimal(q: &Query, p: usize) -> Result<Self> {
        let cover = optimal_cover(q)?;
        Self::from_cover(q, &cover, p)
    }

    /// Compute the allocation from a given (not necessarily optimal)
    /// fractional vertex cover.
    ///
    /// # Errors
    ///
    /// Rejects `p == 0`, covers of the wrong width, non-covers and covers
    /// with value zero.
    pub fn from_cover(q: &Query, cover: &VertexCover, p: usize) -> Result<Self> {
        if p == 0 {
            return Err(CoreError::InvalidPlan("p must be at least 1".to_string()));
        }
        if cover.weights().len() != q.num_vars() {
            return Err(CoreError::InvalidPlan(format!(
                "cover has {} weights but the query has {} variables",
                cover.weights().len(),
                q.num_vars()
            )));
        }
        if !cover.is_valid_for(q) {
            return Err(CoreError::InvalidPlan(
                "the supplied weights do not form a fractional vertex cover".to_string(),
            ));
        }
        let tau = cover.total();
        if !tau.is_positive() {
            return Err(CoreError::InvalidPlan("cover value must be positive".to_string()));
        }
        let exponents: Vec<Rational> = cover
            .weights()
            .iter()
            .map(|v| v.checked_div(&tau).map_err(CoreError::from))
            .collect::<Result<_>>()?;
        let shares = round_shares(&exponents, p);
        Ok(ShareAllocation { cover: cover.weights().to_vec(), tau, exponents, shares, p })
    }

    /// Compute an allocation whose exponents are `(1 − ε) · vᵢ` for the
    /// *partial-answer* HyperCube of Proposition 3.11. The resulting
    /// "hypercube" has `p^{(1−ε)τ}` cells — more than `p` when
    /// `ε < 1 − 1/τ` — and the caller maps a random subset of `p` cells to
    /// the actual servers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShareAllocation::from_cover`].
    pub fn scaled(q: &Query, p: usize, one_minus_epsilon: Rational) -> Result<Self> {
        if p == 0 {
            return Err(CoreError::InvalidPlan("p must be at least 1".to_string()));
        }
        if !one_minus_epsilon.is_positive() {
            return Err(CoreError::InvalidPlan("1 − ε must be positive".to_string()));
        }
        let cover = optimal_cover(q)?;
        let exponents: Vec<Rational> = cover
            .weights()
            .iter()
            .map(|v| v.checked_mul(&one_minus_epsilon).map_err(CoreError::from))
            .collect::<Result<_>>()?;
        // Shares p^{(1-ε)v_i}, rounded to at least 1 each; the product may
        // exceed p (that is the point of the partial variant).
        let shares: Vec<usize> =
            exponents.iter().map(|e| fractional_power(p, *e).round().max(1.0) as usize).collect();
        Ok(ShareAllocation {
            cover: cover.weights().to_vec(),
            tau: cover.total(),
            exponents,
            shares,
            p,
        })
    }

    /// The share of a variable.
    pub fn share(&self, v: VarId) -> usize {
        self.shares.get(v.0).copied().unwrap_or(1)
    }

    /// The total number of hypercube cells `∏ᵢ pᵢ`.
    pub fn num_cells(&self) -> usize {
        self.shares.iter().product()
    }

    /// The worst-case replication factor of an atom whose variable set is
    /// `vars`: the product of the shares of the variables *not* in the
    /// atom, `∏_{i ∉ vars} pᵢ`.
    pub fn replication_of_atom(&self, q: &Query, atom: mpc_cq::AtomId) -> Result<usize> {
        let vars = q.vars_of_atom(atom)?;
        Ok(self
            .shares
            .iter()
            .enumerate()
            .filter(|(i, _)| !vars.contains(&VarId(*i)))
            .map(|(_, s)| *s)
            .product())
    }

    /// The largest replication factor over all atoms; bounded by
    /// `p^{1 − 1/τ}` for exact fractional shares.
    pub fn max_replication(&self, q: &Query) -> Result<usize> {
        let mut max = 1;
        for a in q.atom_ids() {
            max = max.max(self.replication_of_atom(q, a)?);
        }
        Ok(max)
    }

    /// The ideal (fractional) per-variable share `p^{eᵢ}` as `f64`, for
    /// diagnostics and the rounding ablation.
    pub fn ideal_share(&self, v: VarId) -> f64 {
        fractional_power(self.p, self.exponents[v.0])
    }

    /// Map a hypercube cell (one coordinate per variable, `coords[i] <
    /// shares[i]`) to a server index in `0..num_cells()` by mixed-radix
    /// encoding.
    pub fn cell_to_server(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.shares.len());
        let mut server = 0usize;
        for (coord, share) in coords.iter().zip(&self.shares) {
            debug_assert!(coord < share, "coordinate {coord} out of range {share}");
            server = server * share + coord;
        }
        server
    }

    /// Enumerate all cells consistent with the given partial coordinates
    /// (`None` = free dimension), returning their server indices. The
    /// number of returned cells is the replication factor of the tuple
    /// being routed.
    pub fn consistent_cells(&self, partial: &[Option<usize>]) -> Vec<usize> {
        consistent_cells(&self.shares, partial)
    }
}

/// An optimal fractional vertex cover through the layered LP solver
/// (closed form → cache → sparse simplex), so repeated allocations over
/// isomorphic queries — notably the per-heavy-subset residual covers of
/// the skew-resilient planner — reuse one solve.
fn optimal_cover(q: &Query) -> Result<VertexCover> {
    Ok(QueryLps::solve(q).map_err(CoreError::from)?.vertex_cover().clone())
}

/// Enumerate the cells of a mixed-radix grid (radix `shares[i]` in
/// dimension `i`) consistent with partial coordinates (`None` = free
/// dimension). This is the routing enumeration of every HyperCube-style
/// program; [`ShareAllocation::consistent_cells`] delegates here, and the
/// skew-resilient residual plans reuse it over their own share vectors.
pub fn consistent_cells(shares: &[usize], partial: &[Option<usize>]) -> Vec<usize> {
    debug_assert_eq!(partial.len(), shares.len());
    let mut cells = vec![0usize];
    for (dim, share) in shares.iter().enumerate() {
        let mut next = Vec::with_capacity(cells.len() * share);
        match partial[dim] {
            Some(coord) => {
                for base in &cells {
                    next.push(base * share + coord);
                }
            }
            None => {
                for base in &cells {
                    for coord in 0..*share {
                        next.push(base * share + coord);
                    }
                }
            }
        }
        cells = next;
    }
    cells
}

/// `p^e` for a rational exponent, as `f64`.
pub fn fractional_power(p: usize, e: Rational) -> f64 {
    (p as f64).powf(e.to_f64())
}

/// Round fractional shares `p^{eᵢ}` to integers `pᵢ ≥ 1` with `∏ pᵢ ≤ p`:
/// start from the floor and repeatedly increment the coordinate whose ideal
/// value exceeds its current value by the largest ratio, as long as the
/// product stays within `p`.
fn round_shares(exponents: &[Rational], p: usize) -> Vec<usize> {
    let ideal: Vec<f64> = exponents.iter().map(|e| fractional_power(p, *e)).collect();
    let mut shares: Vec<usize> = ideal.iter().map(|x| (x.floor() as usize).max(1)).collect();

    // The floors might already overshoot (possible only through the max(1)
    // clamp); shrink the largest coordinates until the product fits.
    while shares.iter().product::<usize>() > p {
        let (idx, _) = shares
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 1)
            .max_by_key(|(_, s)| **s)
            .expect("product > p >= 1 implies some share > 1");
        shares[idx] -= 1;
    }

    // Greedily grow the most-underallocated coordinate.
    loop {
        let product: usize = shares.iter().product();
        let mut best: Option<(usize, f64)> = None;
        for i in 0..shares.len() {
            // Growing coordinate i is only allowed if the product stays ≤ p.
            let grown = product / shares[i] * (shares[i] + 1);
            if grown > p {
                continue;
            }
            let deficit = ideal[i] / shares[i] as f64;
            if best.is_none_or(|(_, d)| deficit > d) {
                best = Some((i, deficit));
            }
        }
        match best {
            // Only grow while some coordinate is actually below its ideal.
            Some((i, deficit)) if deficit > 1.0 => shares[i] += 1,
            _ => break,
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn triangle_shares_are_cube_roots() {
        // C3 with p = 64: shares (4, 4, 4) — Example 3.1 with p^{1/3}.
        let q = families::triangle();
        let alloc = ShareAllocation::optimal(&q, 64).unwrap();
        assert_eq!(alloc.tau, r(3, 2));
        assert_eq!(alloc.exponents, vec![r(1, 3); 3]);
        assert_eq!(alloc.shares, vec![4, 4, 4]);
        assert_eq!(alloc.num_cells(), 64);
        // Each binary atom misses one variable: replication p^{1/3} = 4.
        assert_eq!(alloc.max_replication(&q).unwrap(), 4);
    }

    #[test]
    fn chain_l2_needs_no_replication() {
        // L2 = S1(x0,x1), S2(x1,x2): optimal cover puts weight 1 on x1, so
        // all servers are allocated to x1 and no tuple is replicated.
        let q = families::chain(2);
        let alloc = ShareAllocation::optimal(&q, 16).unwrap();
        assert_eq!(alloc.tau, Rational::ONE);
        let x1 = q.var_id("x1").unwrap();
        assert_eq!(alloc.share(x1), 16);
        assert_eq!(alloc.num_cells(), 16);
        assert_eq!(alloc.max_replication(&q).unwrap(), 1);
    }

    #[test]
    fn star_allocates_everything_to_center() {
        let q = families::star(3);
        let alloc = ShareAllocation::optimal(&q, 32).unwrap();
        let z = q.var_id("z").unwrap();
        assert_eq!(alloc.share(z), 32);
        assert_eq!(alloc.max_replication(&q).unwrap(), 1);
    }

    #[test]
    fn product_never_exceeds_p() {
        for p in [1usize, 2, 3, 5, 7, 8, 12, 16, 27, 50, 64, 100, 1000] {
            for q in [
                families::triangle(),
                families::cycle(5),
                families::chain(4),
                families::chain(5),
                families::star(3),
                families::binomial(4, 2).unwrap(),
                families::spoke(3),
            ] {
                let alloc = ShareAllocation::optimal(&q, p).unwrap();
                assert!(alloc.num_cells() <= p, "{} with p = {p}: {:?}", q.name(), alloc.shares);
                assert!(alloc.shares.iter().all(|&s| s >= 1));
            }
        }
    }

    #[test]
    fn exponents_sum_to_one() {
        for q in [families::triangle(), families::chain(5), families::binomial(4, 2).unwrap()] {
            let alloc = ShareAllocation::optimal(&q, 64).unwrap();
            assert_eq!(Rational::sum(alloc.exponents.iter()).unwrap(), Rational::ONE);
        }
    }

    #[test]
    fn cell_encoding_is_a_bijection() {
        let q = families::triangle();
        let alloc = ShareAllocation::optimal(&q, 27).unwrap();
        assert_eq!(alloc.shares, vec![3, 3, 3]);
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    seen.insert(alloc.cell_to_server(&[a, b, c]));
                }
            }
        }
        assert_eq!(seen.len(), 27);
        assert_eq!(*seen.iter().max().unwrap(), 26);
    }

    #[test]
    fn consistent_cells_enumerates_free_dimensions() {
        let q = families::triangle();
        let alloc = ShareAllocation::optimal(&q, 27).unwrap();
        // Tuple of S1(x1,x2): x1, x2 fixed, x3 free → 3 destinations.
        let cells = alloc.consistent_cells(&[Some(1), Some(2), None]);
        assert_eq!(cells.len(), 3);
        // All coordinates fixed → exactly one destination.
        assert_eq!(alloc.consistent_cells(&[Some(0), Some(0), Some(0)]).len(), 1);
        // All free → every server.
        assert_eq!(alloc.consistent_cells(&[None, None, None]).len(), 27);
    }

    #[test]
    fn custom_cover_is_respected() {
        // A non-optimal cover of L2: weight 1 on x0 and x1 (τ = 2).
        let q = families::chain(2);
        let cover =
            VertexCover::from_weights(vec![Rational::ONE, Rational::ONE, Rational::ZERO]).unwrap();
        let alloc = ShareAllocation::from_cover(&q, &cover, 16).unwrap();
        assert_eq!(alloc.tau, r(2, 1));
        assert_eq!(alloc.exponents, vec![r(1, 2), r(1, 2), r(0, 1)]);
        assert_eq!(alloc.shares, vec![4, 4, 1]);
        // S2(x1,x2) misses x0 → replicated 4 times (worse than optimal).
        assert!(alloc.max_replication(&q).unwrap() > 1);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let q = families::chain(2);
        assert!(ShareAllocation::optimal(&q, 0).is_err());
        let bad_cover = VertexCover::from_weights(vec![Rational::ZERO; 3]).unwrap();
        assert!(ShareAllocation::from_cover(&q, &bad_cover, 8).is_err());
        let wrong_len = VertexCover::from_weights(vec![Rational::ONE; 2]).unwrap();
        assert!(ShareAllocation::from_cover(&q, &wrong_len, 8).is_err());
    }

    #[test]
    fn scaled_allocation_exceeds_p_below_space_exponent() {
        // C3 at ε = 0: shares p^{v_i} with Σ v_i = 3/2 → p^{3/2} cells > p.
        let q = families::triangle();
        let alloc = ShareAllocation::scaled(&q, 64, Rational::ONE).unwrap();
        assert!(alloc.num_cells() > 64, "cells = {}", alloc.num_cells());
        // At 1−ε = 2/3 (i.e. ε = 1/3 = ε*), the cells are ≈ p again.
        let alloc = ShareAllocation::scaled(&q, 64, r(2, 3)).unwrap();
        assert!(alloc.num_cells() <= 80);
    }

    #[test]
    fn rounding_handles_non_perfect_powers() {
        // p = 50 is not a perfect cube; C3 shares must multiply to ≤ 50 and
        // stay close to 50^{1/3} ≈ 3.68 each.
        let q = families::triangle();
        let alloc = ShareAllocation::optimal(&q, 50).unwrap();
        assert!(alloc.num_cells() <= 50);
        assert!(alloc.num_cells() >= 27, "should use a good fraction of the servers");
        for v in q.var_ids() {
            assert!(alloc.share(v) >= 3 && alloc.share(v) <= 4);
        }
    }
}
