//! Friedgut's inequality (Section 2.6) and the answer-size bounds derived
//! from it.
//!
//! For a query `q` with atoms `S₁, …, S_ℓ` and a fractional **edge cover**
//! `u = (u₁, …, u_ℓ)`, Friedgut's inequality states that for any
//! non-negative weights `wⱼ(aⱼ)` on the tuples of each relation,
//!
//! ```text
//!   Σ_{a ∈ [n]^k}  ∏ⱼ wⱼ(aⱼ)   ≤   ∏ⱼ ( Σ_{aⱼ} wⱼ(aⱼ)^{1/uⱼ} )^{uⱼ} .
//! ```
//!
//! Instantiating `wⱼ` with the 0/1 indicator of the relation instance
//! turns the left side into the number of query answers `|q(I)|` and the
//! right side into the AGM-style bound `∏ⱼ |Sⱼ|^{uⱼ}` — the inequality the
//! paper uses (with a *tight packing* playing the role of the cover) at
//! the heart of the one-round lower bound (Lemma 3.7).
//!
//! This module evaluates both sides for indicator weights and for
//! arbitrary per-tuple weights, so the inequality itself becomes a
//! testable invariant of the codebase.

use std::collections::HashMap;

use mpc_cq::Query;
use mpc_lp::cover::{solve_edge_cover, EdgeCover};
use mpc_lp::Rational;
use mpc_storage::{Database, Relation};

use crate::error::CoreError;
use crate::Result;

/// The two sides of Friedgut's inequality for a given weighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FriedgutSides {
    /// The left-hand side `Σ_a ∏ⱼ wⱼ(aⱼ)`.
    pub lhs: f64,
    /// The right-hand side `∏ⱼ (Σ wⱼ^{1/uⱼ})^{uⱼ}`.
    pub rhs: f64,
}

impl FriedgutSides {
    /// True if the inequality holds (up to floating-point slack).
    pub fn holds(&self) -> bool {
        self.lhs <= self.rhs * (1.0 + 1e-9) + 1e-9
    }
}

/// Per-relation tuple weights: a map from tuple to a non-negative weight.
/// Tuples not present have weight 0.
pub type TupleWeights = HashMap<mpc_storage::Tuple, f64>;

/// Evaluate both sides of Friedgut's inequality for indicator weights
/// (weight 1 for every tuple present in the database), using an optimal
/// fractional edge cover of `q`. The left side is then `|q(I)|` and the
/// right side is the AGM bound `∏ⱼ |Sⱼ|^{uⱼ}`.
///
/// # Errors
///
/// Propagates LP and storage errors.
pub fn indicator_sides(q: &Query, db: &Database) -> Result<FriedgutSides> {
    let cover = solve_edge_cover(q)?;
    let lhs = mpc_storage::join::evaluate(q, db)?.len() as f64;
    let rhs = rhs_for_indicator(q, db, &cover)?;
    Ok(FriedgutSides { lhs, rhs })
}

/// The right-hand side for indicator weights: `∏ⱼ |Sⱼ|^{uⱼ}` (with the
/// convention `|Sⱼ|^0 · …` handled via the `uⱼ → 0` limit, i.e. a factor
/// `max wⱼ = 1` for non-empty relations).
fn rhs_for_indicator(q: &Query, db: &Database, cover: &EdgeCover) -> Result<f64> {
    let mut rhs = 1.0f64;
    for a in q.atom_ids() {
        let atom = q.atom(a)?;
        let rel = db.relation(&atom.name)?;
        let u = cover.weight(a).to_f64();
        if u > 0.0 {
            if rel.is_empty() {
                return Ok(0.0);
            }
            rhs *= (rel.len() as f64).powf(u);
        } else if rel.is_empty() {
            // lim_{u→0} (Σ w^{1/u})^u = max w = 0 for an empty relation.
            return Ok(0.0);
        }
    }
    Ok(rhs)
}

/// Evaluate both sides for arbitrary non-negative tuple weights and an
/// explicit fractional edge cover `u` (one weight per atom, in atom
/// order). Weights for tuples that are absent from the map are 0.
///
/// The left side enumerates the joint assignments by joining the supports
/// of the weight maps, so it is exact whenever the supports are finite
/// (which they are — they are maps).
///
/// # Errors
///
/// Returns [`CoreError::InvalidPlan`] if the cover has the wrong width or
/// is not a valid fractional edge cover of `q`, and propagates storage
/// errors.
pub fn weighted_sides(
    q: &Query,
    weights: &[TupleWeights],
    cover: &[Rational],
) -> Result<FriedgutSides> {
    if weights.len() != q.num_atoms() || cover.len() != q.num_atoms() {
        return Err(CoreError::InvalidPlan(format!(
            "expected {} weight maps and cover entries",
            q.num_atoms()
        )));
    }
    // Validate the cover: every variable must be covered with total ≥ 1.
    for v in q.var_ids() {
        let mut total = Rational::ZERO;
        for a in q.atoms_of_var(v) {
            total += cover[a.0];
        }
        if total < Rational::ONE {
            return Err(CoreError::InvalidPlan(format!(
                "edge cover leaves variable {} uncovered",
                q.var_name(v)?
            )));
        }
    }

    // Build a database whose relations are the supports, then join it to
    // enumerate the assignments with non-zero product on the left side.
    let mut db = Database::new(u64::MAX);
    for (atom, w) in q.atoms().iter().zip(weights) {
        let mut rel = Relation::empty(&atom.name, atom.arity());
        for t in w.keys() {
            if t.arity() != atom.arity() {
                return Err(CoreError::InvalidPlan(format!(
                    "weight tuple arity {} does not match atom {} of arity {}",
                    t.arity(),
                    atom.name,
                    atom.arity()
                )));
            }
            rel.insert(t.clone())?;
        }
        db.insert_relation(rel);
    }
    let assignments = mpc_storage::join::evaluate(q, &db)?;

    // LHS: sum over joint assignments of the product of the per-atom weights.
    let mut lhs = 0.0f64;
    for a in assignments.iter() {
        let mut product = 1.0f64;
        for (atom, w) in q.atoms().iter().zip(weights) {
            let projected =
                mpc_storage::Tuple(atom.vars.iter().map(|v| a.values()[v.0]).collect::<Vec<_>>());
            product *= w.get(&projected).copied().unwrap_or(0.0);
        }
        lhs += product;
    }

    // RHS: ∏ⱼ (Σ wⱼ^{1/uⱼ})^{uⱼ}, with the u → 0 limit giving max wⱼ.
    let mut rhs = 1.0f64;
    for (j, w) in weights.iter().enumerate() {
        let u = cover[j].to_f64();
        if u > 0.0 {
            let sum: f64 = w.values().map(|x| x.powf(1.0 / u)).sum();
            rhs *= sum.powf(u);
        } else {
            let max = w.values().copied().fold(0.0f64, f64::max);
            rhs *= max;
        }
    }
    Ok(FriedgutSides { lhs, rhs })
}

/// The AGM-style output bound `∏ⱼ |Sⱼ|^{uⱼ}` with an optimal fractional
/// edge cover — the corollary of Friedgut's inequality the paper spells
/// out for `C₃` (`|C3| ≤ √(|S1|·|S2|·|S3|)`).
///
/// # Errors
///
/// Propagates LP and storage errors.
pub fn agm_output_bound(q: &Query, db: &Database) -> Result<f64> {
    let cover = solve_edge_cover(q)?;
    rhs_for_indicator(q, db, &cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_storage::Tuple;

    #[test]
    fn indicator_inequality_holds_on_matchings() {
        for q in [
            families::triangle(),
            families::cycle(5),
            families::chain(4),
            families::star(3),
            families::binomial(3, 2).unwrap(),
        ] {
            let db = matching_database(&q, 200, 3);
            let sides = indicator_sides(&q, &db).unwrap();
            assert!(sides.holds(), "{}: lhs {} > rhs {}", q.name(), sides.lhs, sides.rhs);
        }
    }

    #[test]
    fn triangle_bound_is_sqrt_of_sizes() {
        // |C3| ≤ sqrt(|S1||S2||S3|): with n-tuple matchings the bound is n^{3/2}.
        let q = families::triangle();
        let n = 400u64;
        let db = matching_database(&q, n, 9);
        let bound = agm_output_bound(&q, &db).unwrap();
        assert!((bound - (n as f64).powf(1.5)).abs() < 1e-6);
        let sides = indicator_sides(&q, &db).unwrap();
        assert!(sides.lhs <= bound);
    }

    #[test]
    fn empty_relation_gives_zero_bound() {
        let q = families::chain(2);
        let mut db = matching_database(&q, 50, 1);
        db.insert_relation(Relation::empty("S2", 2));
        assert_eq!(agm_output_bound(&q, &db).unwrap(), 0.0);
        let sides = indicator_sides(&q, &db).unwrap();
        assert_eq!(sides.lhs, 0.0);
        assert!(sides.holds());
    }

    #[test]
    fn weighted_inequality_on_paper_example_l3() {
        // The paper's L3 example with cover (1, 0, 1): the middle factor
        // becomes max β. Use small weight maps and check the inequality.
        let q = families::chain(3);
        let mut alpha = TupleWeights::new();
        let mut beta = TupleWeights::new();
        let mut gamma = TupleWeights::new();
        for i in 0..5u64 {
            alpha.insert(Tuple(vec![i, i + 1]), 0.5 + i as f64 * 0.1);
            beta.insert(Tuple(vec![i + 1, i + 2]), 1.0 + i as f64);
            gamma.insert(Tuple(vec![i + 2, i + 3]), 0.25);
        }
        let cover = vec![Rational::ONE, Rational::ZERO, Rational::ONE];
        let sides = weighted_sides(&q, &[alpha, beta, gamma], &cover).unwrap();
        assert!(sides.lhs > 0.0);
        assert!(sides.holds(), "lhs {} rhs {}", sides.lhs, sides.rhs);
    }

    #[test]
    fn weighted_inequality_on_triangle_with_half_cover() {
        let q = families::triangle();
        let mut maps = vec![TupleWeights::new(), TupleWeights::new(), TupleWeights::new()];
        // A small dense block of weighted tuples.
        for x in 0..4u64 {
            for y in 0..4u64 {
                maps[0].insert(Tuple(vec![x, y]), 1.0 + (x + y) as f64 * 0.3);
                maps[1].insert(Tuple(vec![x, y]), 2.0 - (x as f64) * 0.2);
                maps[2].insert(Tuple(vec![x, y]), 0.5 + (y as f64) * 0.1);
            }
        }
        let half = Rational::new(1, 2);
        let sides = weighted_sides(&q, &maps, &[half, half, half]).unwrap();
        assert!(sides.lhs > 0.0);
        assert!(sides.holds(), "lhs {} rhs {}", sides.lhs, sides.rhs);
    }

    #[test]
    fn invalid_cover_is_rejected() {
        let q = families::triangle();
        let maps = vec![TupleWeights::new(), TupleWeights::new(), TupleWeights::new()];
        // (1/4, 1/4, 1/4) does not cover any variable fully.
        let bad = vec![Rational::new(1, 4); 3];
        assert!(weighted_sides(&q, &maps, &bad).is_err());
        // Wrong width.
        assert!(weighted_sides(&q, &maps, &[Rational::ONE]).is_err());
    }

    #[test]
    fn mismatched_weight_arity_is_rejected() {
        let q = families::chain(2);
        let mut bad = TupleWeights::new();
        bad.insert(Tuple(vec![1]), 1.0);
        let ok = TupleWeights::new();
        let cover = vec![Rational::ONE, Rational::ONE];
        assert!(weighted_sides(&q, &[bad, ok], &cover).is_err());
    }
}
