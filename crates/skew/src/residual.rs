//! Residual query plans (Beame et al. 2014, Section 4).
//!
//! Fix a set `H` of query variables to *heavy* values. The answers whose
//! heavy configuration is exactly `H` are the answers of the **residual
//! query** `q_H`: the query obtained by deleting the variables of `H` from
//! every atom (an atom all of whose variables are heavy degenerates into a
//! filter). Because each heavy value exceeds the `n_R / p_x` frequency
//! threshold, there are at most `p_x` heavy values per variable — few — so
//! the residual queries can each be given their own, smaller, HyperCube
//! grid in which the heavy variables have share 1 and the remaining
//! (light) variables share the servers of the plan's group.
//!
//! [`ResidualPlanSet::build`] enumerates one plan per subset of the
//! heavy-capable variables (the light plan is the subset `∅`), carves the
//! `p` servers into disjoint groups sized proportionally to the tuple mass
//! each plan attracts, and equips every plan with two share candidates:
//!
//! * the cover-based [`ShareAllocation`] of its residual query (the
//!   paper's worst-case-optimal choice, cardinality-blind) — one cover LP
//!   per heavy subset, served through the memoising LP cache of `mpc-lp`,
//!   so isomorphic residuals across plans, rebuilds and sibling queries
//!   cost one solve, and
//! * a statistics-aware share vector from the **degree-aware LP** of
//!   BKS14 §5 ([`mpc_lp::degree`]): per-pattern cardinalities and
//!   per-column maximum degrees become LP constraints, the optimal
//!   exponents are floored onto the group's integer grid, and the leftover
//!   integer slack is filled greedily against the estimated per-server
//!   load `Σ_j |R_j^H| / ∏_{x ∈ lightvars(R_j)} p_x`,
//!
//! keeping whichever estimates lower. Degenerate (heavy or absent)
//! variables always get share 1.
//!
//! [`ResidualPlanSet::build_with_stats`] is the adaptive-runtime entry
//! point: it plans from a shared [`mpc_data::DbStatistics`] artefact —
//! pattern counts come from the sample (scaled) when the statistics are
//! sampled, so the whole planning pass costs `O(p · budget)` instead of a
//! full scan. [`ResidualPlanSet::build`] keeps the exact behaviour.

use std::collections::{BTreeMap, BTreeSet};

use mpc_core::shares::ShareAllocation;
use mpc_cq::{Atom, Query, VarId};
use mpc_data::{DbStatistics, StatsMode};
use mpc_lp::degree::{rational_log, solve_degree_lp, DegreeStatistics};
use mpc_lp::Rational;
use mpc_storage::Database;

use crate::detector::HeavyHitters;
use crate::error::SkewError;
use crate::Result;

/// Denominator of the rationalised `log` grid the degree LP solves on:
/// statistics are rounded to multiples of `1/12` in exponent space, which
/// keeps cache keys small and moves the optimum by at most one grid step.
const LOG_GRID: i128 = 12;

/// One residual plan: the servers and shares dedicated to the answers
/// whose heavy configuration is exactly [`ResidualPlan::heavy_vars`].
#[derive(Debug, Clone)]
pub struct ResidualPlan {
    /// The variables fixed to heavy values in this plan (`∅` = the light
    /// plan, the ordinary HyperCube over the group).
    pub heavy_vars: BTreeSet<VarId>,
    /// The residual query `q_H` (heavy variables deleted); `None` when
    /// every variable is heavy and the residual is a pure filter.
    pub residual: Option<Query>,
    /// The cover-based allocation of the residual query within this
    /// plan's group, kept for reporting even when the cardinality-aware
    /// candidate won.
    pub allocation: Option<ShareAllocation>,
    /// The share vector actually used for routing, full-width over the
    /// *original* query's variables; heavy and absent variables have
    /// share 1.
    pub shares: Vec<usize>,
    /// First server (global index) of this plan's group.
    pub offset: usize,
    /// Number of servers the group was granted (`cells() ≤ group_size`).
    pub group_size: usize,
    /// Estimated tuples routed to this plan (before replication), used for
    /// proportional group sizing.
    pub weight_tuples: u64,
}

impl ResidualPlan {
    /// Number of grid cells actually used, `∏ shares ≤ group_size`.
    pub fn cells(&self) -> usize {
        self.shares.iter().product()
    }

    /// Does global server `s` belong to this plan's grid?
    pub fn owns_server(&self, s: usize) -> bool {
        s >= self.offset && s < self.offset + self.cells()
    }
}

/// The complete set of residual plans for a query, a database and `p`
/// servers: disjoint server groups, one per heavy-variable subset.
#[derive(Debug, Clone)]
pub struct ResidualPlanSet {
    heavy: HeavyHitters,
    plans: Vec<ResidualPlan>,
    p: usize,
}

impl ResidualPlanSet {
    /// Build the plan set. If `2^h > p` for `h` heavy-capable variables,
    /// the least severe variables are demoted to light (their heavy sets
    /// dropped) until every residual plan can be granted at least one
    /// server.
    ///
    /// # Errors
    ///
    /// Rejects `p == 0` and propagates share-allocation errors.
    pub fn build(q: &Query, db: &Database, heavy: HeavyHitters, p: usize) -> Result<Self> {
        let stats = DbStatistics::collect(db, StatsMode::Exact);
        Self::build_with_stats(q, db, heavy, p, &stats)
    }

    /// Like [`ResidualPlanSet::build`], but planning from an
    /// already-collected [`DbStatistics`] artefact — exact or sampled.
    /// With sampled statistics the per-pattern tuple counts are estimated
    /// from the sample (scaled by `n/budget`), so building the plan set
    /// never scans the database; group sizing and share refinement degrade
    /// gracefully with the sample, while routing correctness is untouched
    /// (plans are correct for *any* heavy set).
    ///
    /// # Errors
    ///
    /// Rejects `p == 0` and propagates share-allocation errors.
    pub fn build_with_stats(
        q: &Query,
        db: &Database,
        heavy: HeavyHitters,
        p: usize,
        stats: &DbStatistics,
    ) -> Result<Self> {
        if p == 0 {
            return Err(SkewError::InvalidPlan("p must be at least 1".to_string()));
        }
        if heavy.num_vars() != q.num_vars() {
            return Err(SkewError::InvalidPlan(format!(
                "heavy hitters cover {} variables but the query has {}",
                heavy.num_vars(),
                q.num_vars()
            )));
        }

        // Keep the most severe heavy variables while 2^h ≤ p.
        let mut capable = heavy.heavy_vars();
        capable.sort_by(|a, b| {
            heavy.severity(*b).partial_cmp(&heavy.severity(*a)).expect("severities are finite")
        });
        while (1usize << capable.len().min(usize::BITS as usize - 1)) > p {
            capable.pop();
        }
        let kept: BTreeSet<VarId> = capable.iter().copied().collect();
        let heavy = heavy.restricted_to(&kept);
        let mut capable: Vec<VarId> = kept.into_iter().collect();
        capable.sort_unstable();

        // Per-atom tuple counts by heavy pattern: one scan of the input,
        // or — with sampled statistics — one scaled pass over the sample.
        let pattern_counts = count_patterns_with_stats(q, db, &heavy, stats);

        // One plan per subset of the capable variables, the light plan
        // (mask 0) first.
        let subsets: Vec<BTreeSet<VarId>> = (0..(1usize << capable.len()))
            .map(|mask| {
                capable
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, v)| *v)
                    .collect()
            })
            .collect();

        // Tuple mass attracted by each plan, for proportional group sizing.
        let weights: Vec<u64> = subsets
            .iter()
            .map(|h| {
                q.atoms()
                    .iter()
                    .zip(&pattern_counts)
                    .map(|(atom, counts)| {
                        let pattern: BTreeSet<VarId> =
                            atom.distinct_vars().intersection(h).copied().collect();
                        counts.get(&pattern).copied().unwrap_or(0)
                    })
                    .sum()
            })
            .collect();
        let group_sizes = proportional_groups(p, &weights);

        let mut plans = Vec::with_capacity(subsets.len());
        let mut offset = 0usize;
        for ((heavy_vars, group_size), weight_tuples) in
            subsets.into_iter().zip(group_sizes).zip(weights)
        {
            let residual = residual_query(q, &heavy_vars);
            let allocation = match &residual {
                Some(rq) => Some(ShareAllocation::optimal(rq, group_size)?),
                None => None,
            };

            // Candidate 1: cover-based shares, lifted to full width.
            let lifted = allocation.as_ref().map(|alloc| {
                let rq = residual.as_ref().expect("allocation implies residual");
                lift_shares(q, rq, alloc)
            });
            // Candidate 2: statistics-aware shares from the degree LP.
            let refined = statistics_shares(q, &heavy_vars, &pattern_counts, stats, group_size);

            let shares = match lifted {
                Some(lifted)
                    if estimated_load(q, &heavy_vars, &pattern_counts, &lifted)
                        <= estimated_load(q, &heavy_vars, &pattern_counts, &refined) =>
                {
                    lifted
                }
                _ => refined,
            };

            let plan = ResidualPlan {
                heavy_vars,
                residual,
                allocation,
                shares,
                offset,
                group_size,
                weight_tuples,
            };
            offset += plan.cells();
            plans.push(plan);
        }

        Ok(ResidualPlanSet { heavy, plans, p })
    }

    /// The (possibly demoted) heavy hitters the plans are keyed on.
    pub fn heavy(&self) -> &HeavyHitters {
        &self.heavy
    }

    /// All plans, light plan first.
    pub fn plans(&self) -> &[ResidualPlan] {
        &self.plans
    }

    /// The number of servers the plan set was built for.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Total servers actually holding grid cells, `Σ cells ≤ p`.
    pub fn servers_used(&self) -> usize {
        self.plans.iter().map(ResidualPlan::cells).sum()
    }

    /// The plan whose heavy-variable set is exactly `pattern`.
    pub fn plan_for_pattern(&self, pattern: &BTreeSet<VarId>) -> Option<usize> {
        self.plans.iter().position(|pl| &pl.heavy_vars == pattern)
    }

    /// The plan owning global server `s`, if any (servers beyond
    /// [`ResidualPlanSet::servers_used`] are idle).
    pub fn plan_of_server(&self, s: usize) -> Option<usize> {
        self.plans.iter().position(|pl| pl.owns_server(s))
    }

    /// The heavy pattern of a tuple of `atom`: the atom's variables whose
    /// value is heavy. Returns `None` for tuples that disagree on a
    /// repeated variable (they can never contribute to an answer).
    pub fn heavy_pattern(
        &self,
        atom: &Atom,
        tuple: &mpc_storage::Tuple,
    ) -> Option<BTreeSet<VarId>> {
        let mut pattern = BTreeSet::new();
        let mut seen: BTreeMap<VarId, u64> = BTreeMap::new();
        for (pos, var) in atom.vars.iter().enumerate() {
            let value = tuple.values()[pos];
            match seen.insert(*var, value) {
                Some(prev) if prev != value => return None,
                _ => {}
            }
            if self.heavy.is_heavy(*var, value) {
                pattern.insert(*var);
            }
        }
        Some(pattern)
    }
}

/// The residual query `q_H`: heavy variables deleted from every atom,
/// fully-heavy atoms dropped. `None` when every atom is fully heavy.
pub fn residual_query(q: &Query, heavy_vars: &BTreeSet<VarId>) -> Option<Query> {
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    for atom in q.atoms() {
        let light: Vec<String> = atom
            .vars
            .iter()
            .filter(|v| !heavy_vars.contains(v))
            .map(|v| q.var_names()[v.0].clone())
            .collect();
        if !light.is_empty() {
            atoms.push((atom.name.clone(), light));
        }
    }
    if atoms.is_empty() {
        return None;
    }
    let label: Vec<&str> = heavy_vars.iter().map(|v| q.var_names()[v.0].as_str()).collect();
    Query::new(format!("{}|{}", q.name(), label.join(",")), atoms).ok()
}

/// Per-atom tuple counts keyed by heavy pattern. With sampled statistics
/// the counts are estimated from the sample and scaled (rounded to the
/// nearest tuple); otherwise the relation is scanned once.
fn count_patterns_with_stats(
    q: &Query,
    db: &Database,
    heavy: &HeavyHitters,
    stats: &DbStatistics,
) -> Vec<BTreeMap<BTreeSet<VarId>, u64>> {
    q.atoms()
        .iter()
        .map(|atom| {
            let mut counts: BTreeMap<BTreeSet<VarId>, u64> = BTreeMap::new();
            let pattern_of = |t: &mpc_storage::Tuple| -> BTreeSet<VarId> {
                atom.vars
                    .iter()
                    .enumerate()
                    .filter(|(pos, var)| heavy.is_heavy(**var, t.values()[*pos]))
                    .map(|(_, var)| *var)
                    .collect()
            };
            if let Some((tuples, scale)) = stats.relation(&atom.name).and_then(|rs| rs.sample()) {
                for t in tuples {
                    *counts.entry(pattern_of(t)).or_insert(0) += 1;
                }
                for c in counts.values_mut() {
                    *c = (*c as f64 * scale).round().max(1.0) as u64;
                }
            } else if let Ok(rel) = db.relation(&atom.name) {
                for t in rel.iter() {
                    *counts.entry(pattern_of(t)).or_insert(0) += 1;
                }
            }
            counts
        })
        .collect()
}

/// Carve `p` servers into groups proportional to `weights`, at least one
/// server per group; leftovers go to the heaviest groups.
fn proportional_groups(p: usize, weights: &[u64]) -> Vec<usize> {
    let m = weights.len();
    debug_assert!(m <= p, "caller guarantees 2^h ≤ p");
    let total: u64 = weights.iter().sum();
    let mut sizes: Vec<usize> = if total == 0 {
        vec![p / m; m]
    } else {
        weights.iter().map(|w| (p as f64 * *w as f64 / total as f64).floor() as usize).collect()
    };
    for s in &mut sizes {
        *s = (*s).max(1);
    }
    // The max(1) clamp may overshoot: shrink the largest groups.
    while sizes.iter().sum::<usize>() > p {
        let (idx, _) = sizes
            .iter()
            .enumerate()
            .filter(|(_, s)| **s > 1)
            .max_by_key(|(_, s)| **s)
            .expect("sum > p ≥ m implies some group > 1");
        sizes[idx] -= 1;
    }
    // Hand leftovers to the heaviest groups (ties: first wins, which is
    // the light plan for equal weights).
    while sizes.iter().sum::<usize>() < p {
        let (idx, _) = weights
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| {
                let la = **a as f64 / sizes[*i] as f64;
                let lb = **b as f64 / sizes[*j] as f64;
                la.partial_cmp(&lb).expect("finite").then(j.cmp(i))
            })
            .expect("at least one group");
        sizes[idx] += 1;
    }
    sizes
}

/// Lift a residual allocation to a full-width share vector over the
/// original query's variables (absent variables get share 1).
fn lift_shares(q: &Query, residual: &Query, alloc: &ShareAllocation) -> Vec<usize> {
    (0..q.num_vars())
        .map(|i| residual.var_id(&q.var_names()[i]).map(|rv| alloc.share(rv).max(1)).unwrap_or(1))
        .collect()
}

/// Estimated per-server load of a plan in tuple-bytes: each atom's routed
/// tuples spread over its hashed dimensions and replicate along the rest,
/// so one server expects `Σ_j bytes_j / ∏_{x ∈ lightvars_j} p_x`.
fn estimated_load(
    q: &Query,
    heavy_vars: &BTreeSet<VarId>,
    pattern_counts: &[BTreeMap<BTreeSet<VarId>, u64>],
    shares: &[usize],
) -> f64 {
    q.atoms()
        .iter()
        .zip(pattern_counts)
        .map(|(atom, counts)| {
            let pattern: BTreeSet<VarId> =
                atom.distinct_vars().intersection(heavy_vars).copied().collect();
            let tuples = counts.get(&pattern).copied().unwrap_or(0);
            let bytes = tuples as f64 * atom.arity() as f64 * 8.0;
            let spread: usize = atom
                .distinct_vars()
                .iter()
                .filter(|v| !heavy_vars.contains(v))
                .map(|v| shares[v.0])
                .product();
            bytes / spread as f64
        })
        .sum()
}

/// Statistics-aware shares: solve the degree-aware LP of BKS14 §5 on the
/// residual query — per-pattern cardinalities as `ν_j`, per-column maximum
/// frequencies (capped at the pattern mass) as `δ_{j,x}` — floor the
/// optimal exponents `e_x` onto the integer grid `p_x = ⌊group^{e_x}⌋`,
/// then fill the leftover integer slack with the load-greedy loop of
/// [`fill_shares`]. Falls back to the pure greedy fill when the residual
/// is degenerate or the LP errors (never observed for workspace sizes).
fn statistics_shares(
    q: &Query,
    heavy_vars: &BTreeSet<VarId>,
    pattern_counts: &[BTreeMap<BTreeSet<VarId>, u64>],
    stats: &DbStatistics,
    group: usize,
) -> Vec<usize> {
    let mut shares = vec![1usize; q.num_vars()];
    if group > 1 {
        if let Some(exponents) = degree_lp_exponents(q, heavy_vars, pattern_counts, stats, group) {
            for (v, e) in exponents {
                shares[v.0] = (group as f64).powf(e.to_f64()).floor().max(1.0) as usize;
            }
            // Flooring each factor keeps ∏ p_x ≤ group^{Σ e_x} ≤ group,
            // but guard against float dust anyway.
            if shares.iter().product::<usize>() > group {
                shares = vec![1; q.num_vars()];
            }
        }
    }
    fill_shares(q, heavy_vars, pattern_counts, group, shares)
}

/// The optimal exponents of the degree-aware LP for the residual query of
/// `heavy_vars`, mapped back to the original query's light variables.
/// `None` when the residual is a pure filter or the LP fails.
fn degree_lp_exponents(
    q: &Query,
    heavy_vars: &BTreeSet<VarId>,
    pattern_counts: &[BTreeMap<BTreeSet<VarId>, u64>],
    stats: &DbStatistics,
    group: usize,
) -> Option<Vec<(VarId, Rational)>> {
    let rq = residual_query(q, heavy_vars)?;
    // Exponent space has base `group` (shares are p_x = group^{e_x}):
    // ν_j = log_group(m_j) over the pattern mass, δ capped at ν_j.
    let mut cardinality = Vec::with_capacity(rq.num_atoms());
    let mut degree = vec![vec![Rational::ZERO; rq.num_vars()]; rq.num_atoms()];
    let mut rj = 0usize;
    for (atom, counts) in q.atoms().iter().zip(pattern_counts) {
        let lights: Vec<(usize, VarId)> = atom
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| !heavy_vars.contains(v))
            .map(|(pos, v)| (pos, *v))
            .collect();
        if lights.is_empty() {
            continue; // fully-heavy atom: dropped from the residual
        }
        let pattern: BTreeSet<VarId> =
            atom.distinct_vars().intersection(heavy_vars).copied().collect();
        let mass = counts.get(&pattern).copied().unwrap_or(0);
        cardinality.push(rational_log(mass, group, LOG_GRID));
        let rs = stats.relation(&atom.name);
        for (pos, var) in lights {
            let rv = rq.var_id(&q.var_names()[var.0])?;
            // Maximum degree of the column, an upper bound for the
            // residual subset; capped at the pattern mass.
            let maxdeg = rs
                .map(|rs| {
                    rs.column_estimates(pos).map(|(_, est)| est).fold(0.0f64, f64::max).round()
                        as u64
                })
                .unwrap_or(0)
                .min(mass);
            let d = rational_log(maxdeg, group, LOG_GRID).min(cardinality[rj]);
            if d > degree[rj][rv.0] {
                degree[rj][rv.0] = d;
            }
        }
        rj += 1;
    }
    let sol = solve_degree_lp(&rq, &DegreeStatistics { cardinality, degree }).ok()?;
    Some(
        (0..q.num_vars())
            .filter_map(|v| {
                let rv = rq.var_id(&q.var_names()[v])?;
                Some((VarId(v), sol.exponents[rv.0]))
            })
            .collect(),
    )
}

/// Load-greedy integer fill: grow, one unit at a time, the light variable
/// whose increment most reduces the estimated load, while the grid stays
/// within `group` servers. Used to top up the degree-LP floor (and, from
/// an all-ones start, as the LP-free fallback).
fn fill_shares(
    q: &Query,
    heavy_vars: &BTreeSet<VarId>,
    pattern_counts: &[BTreeMap<BTreeSet<VarId>, u64>],
    group: usize,
    mut shares: Vec<usize>,
) -> Vec<usize> {
    loop {
        let product: usize = shares.iter().product();
        let current = estimated_load(q, heavy_vars, pattern_counts, &shares);
        let mut best: Option<(usize, f64)> = None;
        for v in 0..shares.len() {
            if heavy_vars.contains(&VarId(v)) {
                continue;
            }
            if product / shares[v] * (shares[v] + 1) > group {
                continue;
            }
            shares[v] += 1;
            let load = estimated_load(q, heavy_vars, pattern_counts, &shares);
            shares[v] -= 1;
            if load < current && best.is_none_or(|(_, b)| load < b) {
                best = Some((v, load));
            }
        }
        match best {
            Some((v, _)) => shares[v] += 1,
            None => return shares,
        }
    }
}

/// Enumerate the cells of a mixed-radix grid consistent with partial
/// coordinates (`None` = free dimension), over an arbitrary full-width
/// share vector. Re-exported from [`mpc_core::shares`] so HyperCube and
/// the residual plans share one implementation of the routing enumeration.
pub use mpc_core::shares::consistent_cells;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::HeavyHitterDetector;
    use mpc_core::shares::ShareAllocation;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_data::skew::heavy_hitter_database;

    fn plan_set(q: &Query, db: &Database, p: usize) -> ResidualPlanSet {
        let alloc = ShareAllocation::optimal(q, p).unwrap();
        let heavy = HeavyHitterDetector::default().detect(q, db, &alloc).unwrap();
        ResidualPlanSet::build(q, db, heavy, p).unwrap()
    }

    #[test]
    fn skew_free_input_collapses_to_one_plan() {
        let q = families::chain(2);
        let db = matching_database(&q, 1000, 3);
        let set = plan_set(&q, &db, 16);
        assert_eq!(set.plans().len(), 1);
        let light = &set.plans()[0];
        assert!(light.heavy_vars.is_empty());
        assert_eq!(light.group_size, 16);
        // The light plan of a skew-free chain is the ordinary hash join:
        // all servers on x1.
        assert_eq!(light.shares, vec![1, 16, 1]);
    }

    #[test]
    fn heavy_chain_gets_two_disjoint_plans() {
        let q = families::chain(2);
        let db = heavy_hitter_database(&q, 2000, 2000, 0.5, 7);
        let set = plan_set(&q, &db, 32);
        assert_eq!(set.plans().len(), 2, "one light plan + one plan for {{x1}}");
        let light = &set.plans()[0];
        let heavy = &set.plans()[1];
        let x1 = q.var_id("x1").unwrap();
        assert!(heavy.heavy_vars.contains(&x1));
        // Disjoint server ranges.
        assert!(light.offset + light.cells() <= heavy.offset);
        assert!(set.servers_used() <= 32);
        // The heavy plan keeps x1 degenerate and spreads on the light
        // variables instead.
        assert_eq!(heavy.shares[x1.0], 1);
        assert!(heavy.shares.iter().product::<usize>() > 1);
        // Proportional sizing favours the light plan (it attracts more
        // than half the tuple mass: all of S1 plus the light part of S2).
        assert!(light.group_size > heavy.group_size);
    }

    #[test]
    fn residual_query_deletes_heavy_positions() {
        let q = families::chain(2); // S1(x0,x1), S2(x1,x2)
        let x1 = q.var_id("x1").unwrap();
        let rq = residual_query(&q, &[x1].into_iter().collect()).unwrap();
        assert_eq!(rq.num_atoms(), 2);
        let (_, s1) = rq.atom_by_name("S1").unwrap();
        assert_eq!(s1.arity(), 1, "S1(x0,x1) becomes S1(x0)");
        // Fixing every variable leaves a pure filter.
        let all: BTreeSet<VarId> = q.var_ids().collect();
        assert!(residual_query(&q, &all).is_none());
    }

    #[test]
    fn plan_lookup_by_pattern_and_server() {
        let q = families::chain(2);
        let db = heavy_hitter_database(&q, 2000, 2000, 0.5, 7);
        let set = plan_set(&q, &db, 32);
        let x1 = q.var_id("x1").unwrap();
        let light = set.plan_for_pattern(&BTreeSet::new()).unwrap();
        let heavy = set.plan_for_pattern(&[x1].into_iter().collect()).unwrap();
        assert_ne!(light, heavy);
        for s in 0..set.servers_used() {
            let owner = set.plan_of_server(s).expect("used servers have an owner");
            assert!(set.plans()[owner].owns_server(s));
        }
        assert_eq!(set.plan_of_server(32), None);
    }

    #[test]
    fn too_many_heavy_vars_are_demoted_by_severity() {
        let q = families::cycle(3);
        let db = heavy_hitter_database(&q, 2000, 2000, 0.5, 3);
        let alloc = ShareAllocation::optimal(&q, 27).unwrap();
        let heavy = HeavyHitterDetector::default().detect(&q, &db, &alloc).unwrap();
        assert_eq!(heavy.heavy_vars().len(), 3);
        // p = 4 can host at most 4 plans = 2 capable variables.
        let set = ResidualPlanSet::build(&q, &db, heavy, 4).unwrap();
        assert!(set.heavy().heavy_vars().len() <= 2);
        assert!(set.plans().len() <= 4);
        assert!(set.servers_used() <= 4);
    }

    #[test]
    fn pattern_respects_repeated_variables() {
        let q = Query::new("q", vec![("S", vec!["x", "x"]), ("T", vec!["x", "y"])]).unwrap();
        let mut db = Database::new(100);
        db.insert_relation(
            mpc_storage::Relation::from_tuples("S", 2, vec![[1u64, 1], [2, 2]]).unwrap(),
        );
        db.insert_relation(mpc_storage::Relation::from_tuples("T", 2, vec![[1u64, 5]]).unwrap());
        // Force an empty heavy set: in a two-tuple relation, *every* value
        // exceeds the n_R / p_x threshold, which is not what this test is
        // about.
        let set = ResidualPlanSet::build(&q, &db, HeavyHitters::none(q.num_vars()), 8).unwrap();
        let (_, s) = q.atom_by_name("S").unwrap();
        // Conflicting repeated variable → no pattern (never joins).
        assert_eq!(set.heavy_pattern(s, &mpc_storage::Tuple::from([1, 2])), None);
        // Consistent repeated variable → a (light) pattern.
        assert_eq!(set.heavy_pattern(s, &mpc_storage::Tuple::from([1, 1])), Some(BTreeSet::new()));
    }

    #[test]
    fn residual_cover_solves_hit_the_lp_cache() {
        // Building a plan set solves one cover LP per heavy subset; a
        // rebuild must answer every one of them from the global LP cache.
        // Counters are process-global and monotonic, so comparing before/
        // after deltas is safe under concurrent tests.
        let q = families::cycle(3);
        let db = heavy_hitter_database(&q, 2000, 2000, 0.5, 3);
        let _warm = plan_set(&q, &db, 27);
        let before = mpc_query_lp_stats();
        let rebuilt = plan_set(&q, &db, 27);
        let after = mpc_query_lp_stats();
        // Recognised-family residuals (like the light plan's C3) take the
        // closed form and never touch the cache; every other residual must
        // hit on the rebuild.
        let cacheable = rebuilt
            .plans()
            .iter()
            .filter_map(|p| p.residual.as_ref())
            .filter(|rq| mpc_cq::families::recognize(rq).is_none())
            .count() as u64;
        assert!(cacheable >= 2, "cycle with heavy vars has multiple non-family residuals");
        assert!(
            after.hits >= before.hits + cacheable,
            "expected ≥{cacheable} cache hits, stats before {before:?} after {after:?}"
        );
    }

    fn mpc_query_lp_stats() -> mpc_lp::cache::CacheStats {
        mpc_lp::LpCache::global().stats()
    }

    #[test]
    fn consistent_cells_mixed_radix() {
        let shares = [2usize, 3, 1];
        assert_eq!(consistent_cells(&shares, &[Some(1), Some(2), Some(0)]), vec![5]);
        assert_eq!(consistent_cells(&shares, &[Some(0), None, Some(0)]), vec![0, 1, 2]);
        assert_eq!(consistent_cells(&shares, &[None, None, None]).len(), 6);
    }

    #[test]
    fn proportional_groups_respect_minimums_and_total() {
        assert_eq!(proportional_groups(8, &[0, 0]), vec![4, 4]);
        let sizes = proportional_groups(32, &[9000, 3000]);
        assert_eq!(sizes.iter().sum::<usize>(), 32);
        assert!(sizes[0] > sizes[1]);
        assert!(sizes.iter().all(|&s| s >= 1));
        // Tiny p still grants every group one server.
        let sizes = proportional_groups(4, &[1000, 1, 1, 1]);
        assert_eq!(sizes, vec![1, 1, 1, 1]);
    }

    #[test]
    fn statistics_shares_follow_cardinalities() {
        // Product residual S1'(x0) × S2'(x2) with |S2'| ≫ |S1'|: the
        // degree-LP shares put (almost) everything on x2, unlike the
        // cover-based (√g, √g) split.
        let q = families::chain(2);
        let x1: BTreeSet<VarId> = [q.var_id("x1").unwrap()].into_iter().collect();
        let counts =
            vec![BTreeMap::from([(x1.clone(), 4u64)]), BTreeMap::from([(x1.clone(), 2000u64)])];
        let stats = DbStatistics::collect(&Database::new(100), StatsMode::Exact);
        let shares = statistics_shares(&q, &x1, &counts, &stats, 8);
        assert_eq!(shares[q.var_id("x1").unwrap().0], 1, "heavy variables stay degenerate");
        assert!(
            shares[q.var_id("x2").unwrap().0] >= 4,
            "the big relation's variable takes the servers: {shares:?}"
        );
    }

    #[test]
    fn degree_constraints_steer_shares_off_skewed_columns() {
        // Chain join where S2's x1-column is a single value: every
        // S2-tuple agrees on x1, so partitioning on x1 alone cannot split
        // S2 — the degree constraint `ν − e_{x2} ≤ t` forces share onto
        // x2. The cardinality-only optimum would be the all-on-x1 split
        // [1, 16, 1]; the degree LP lands on the balanced [1, 4, 4].
        let q = families::chain(2);
        let no_heavy: BTreeSet<VarId> = BTreeSet::new();
        let empty = BTreeSet::new();
        let counts = vec![
            BTreeMap::from([(empty.clone(), 1000u64)]),
            BTreeMap::from([(empty.clone(), 1000u64)]),
        ];
        let mut db = Database::new(100_000);
        db.insert_relation(
            mpc_storage::Relation::from_tuples(
                "S1",
                2,
                (0..1000u64).map(|i| [i, i]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        // S2(x1, x2) with constant x1: max degree on x1 = |S2|.
        db.insert_relation(
            mpc_storage::Relation::from_tuples(
                "S2",
                2,
                (0..1000u64).map(|i| [1, i]).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        let stats = DbStatistics::collect(&db, StatsMode::Exact);
        let shares = statistics_shares(&q, &no_heavy, &counts, &stats, 16);
        let (x1, x2) = (q.var_id("x1").unwrap(), q.var_id("x2").unwrap());
        assert!(shares[x2.0] >= 4, "the degree bound forces share onto x2: {shares:?}");
        assert!(shares[x1.0] < 16, "x1 no longer takes the whole grid: {shares:?}");
    }

    /// The property wall of the sampled planner: over a seeded loop,
    /// whenever the exact plan set fits the server budget (it always
    /// does by construction), the sampled plan set fits the same budget —
    /// sampling shifts group sizes and shares, never the invariants.
    #[test]
    fn sampled_plans_stay_within_budget_whenever_exact_plans_do() {
        let q = families::chain(2);
        let p = 32;
        for seed in 0..6u64 {
            let db = mpc_data::skew::zipf_database(&q, 4000, 4000, 1.1, seed);
            let alloc = ShareAllocation::optimal(&q, p).unwrap();

            let exact_heavy = HeavyHitterDetector::default().detect(&q, &db, &alloc).unwrap();
            let exact_set = ResidualPlanSet::build(&q, &db, exact_heavy, p).unwrap();
            assert!(exact_set.servers_used() <= p);

            let stats =
                DbStatistics::collect(&db, StatsMode::Sampled { budget: 600, seed: seed * 17 + 3 });
            let sampled_heavy =
                HeavyHitterDetector::default().detect_from_stats(&q, &stats, &alloc).unwrap();
            let sampled_set =
                ResidualPlanSet::build_with_stats(&q, &db, sampled_heavy, p, &stats).unwrap();

            // Same budget invariants as the exact plan set…
            assert!(sampled_set.servers_used() <= p, "seed {seed}");
            assert!(sampled_set.plans().len() <= exact_set.plans().len().max(1) * 2);
            let mut end = 0usize;
            for plan in sampled_set.plans() {
                assert!(plan.cells() <= plan.group_size, "seed {seed}: grid fits its group");
                assert!(plan.offset >= end, "seed {seed}: groups are disjoint");
                end = plan.offset + plan.cells();
            }
            assert!(end <= p);
            // …and graceful degradation: the sampled heavy set never
            // grows beyond the exact one by more than the slack allows
            // (subset-with-bounded-misses is pinned in detector tests).
            assert!(
                sampled_set.heavy().num_heavy_values() <= exact_set.heavy().num_heavy_values() + 4,
                "seed {seed}"
            );
        }
    }
}
