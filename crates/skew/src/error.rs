//! Error type for the skew crate.

use std::fmt;

/// Errors raised by heavy-hitter detection, residual planning and the
/// skew-resilient program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkewError {
    /// Propagated query error.
    Query(String),
    /// Propagated core (shares/LP) error.
    Core(String),
    /// Propagated storage error.
    Storage(String),
    /// Propagated simulator error.
    Sim(String),
    /// A plan set was requested with inconsistent parameters.
    InvalidPlan(String),
}

impl fmt::Display for SkewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkewError::Query(m) => write!(f, "query error: {m}"),
            SkewError::Core(m) => write!(f, "core error: {m}"),
            SkewError::Storage(m) => write!(f, "storage error: {m}"),
            SkewError::Sim(m) => write!(f, "simulation error: {m}"),
            SkewError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for SkewError {}

impl From<mpc_cq::CqError> for SkewError {
    fn from(e: mpc_cq::CqError) -> Self {
        SkewError::Query(e.to_string())
    }
}

impl From<mpc_core::CoreError> for SkewError {
    fn from(e: mpc_core::CoreError) -> Self {
        SkewError::Core(e.to_string())
    }
}

impl From<mpc_storage::StorageError> for SkewError {
    fn from(e: mpc_storage::StorageError) -> Self {
        SkewError::Storage(e.to_string())
    }
}

impl From<mpc_sim::SimError> for SkewError {
    fn from(e: mpc_sim::SimError) -> Self {
        SkewError::Sim(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SkewError = mpc_cq::CqError::EmptyQuery.into();
        assert!(matches!(e, SkewError::Query(_)));
        assert!(e.to_string().contains("query"));
        let e: SkewError = mpc_core::CoreError::InvalidPlan("x".to_string()).into();
        assert!(matches!(e, SkewError::Core(_)));
        let e = SkewError::InvalidPlan("p too small".to_string());
        assert!(e.to_string().contains("p too small"));
    }
}
