//! Heavy-hitter detection (Beame et al. 2014, "Skew in Parallel Query
//! Processing", Section 3).
//!
//! The HyperCube load guarantee `O(n / p^{1/τ*})` assumes skew-free
//! inputs: every value of a partitioned variable `x` occurs `O(n / p_x)`
//! times, so hashing `x` into `p_x` buckets balances. A value that occurs
//! **more** often than `n / p_x` necessarily overloads the bucket it hashes
//! to, no matter how good the hash function is — such values are the
//! *heavy hitters* of `x`, and they are exactly the values the detector
//! reports. The residual plans of [`crate::residual`] then route them
//! around the grid.
//!
//! Because the threshold is `n_R / p_x`, a variable with share 1 (not
//! partitioned by HyperCube) can never have heavy hitters: skew on an
//! unpartitioned column is invisible to the algorithm. Detection is a
//! statistics pass over the database — the resulting sets are baked into
//! the routing function, which therefore stays a pure function of the
//! tuple as the tuple-based MPC model requires.

use std::collections::BTreeSet;

use mpc_core::shares::ShareAllocation;
use mpc_cq::{Query, VarId};
use mpc_data::skew::frequency_histograms;
use mpc_data::{DbStatistics, StatsMode};
use mpc_storage::Database;

use crate::Result;

/// Tuning knobs of the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitterPolicy {
    /// Multiplier on the `n_R / p_x` frequency threshold: values are heavy
    /// when their frequency exceeds `scale · n_R / p_x`. Values below 1
    /// detect more aggressively, values above 1 more conservatively.
    pub scale: f64,
}

impl Default for HeavyHitterPolicy {
    fn default() -> Self {
        HeavyHitterPolicy { scale: 1.0 }
    }
}

impl HeavyHitterPolicy {
    /// A policy with the given threshold multiplier.
    pub fn with_scale(scale: f64) -> Self {
        HeavyHitterPolicy { scale }
    }

    /// The frequency above which a value of a column with `len` tuples is
    /// heavy, for a variable with HyperCube share `share`.
    pub fn threshold(&self, len: usize, share: usize) -> f64 {
        self.scale * len as f64 / share as f64
    }
}

/// The detected heavy values, per query variable.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitters {
    /// `per_var[v]` = the heavy values of variable `VarId(v)`.
    per_var: Vec<BTreeSet<u64>>,
    /// Worst ratio `frequency / threshold` observed per variable (1.0 when
    /// nothing exceeded the threshold); used to rank variables when the
    /// plan set must drop some to fit `2^h ≤ p`.
    severity: Vec<f64>,
}

impl HeavyHitters {
    /// No heavy values for any of `k` variables.
    pub fn none(k: usize) -> Self {
        HeavyHitters { per_var: vec![BTreeSet::new(); k], severity: vec![1.0; k] }
    }

    /// Number of query variables covered.
    pub fn num_vars(&self) -> usize {
        self.per_var.len()
    }

    /// Is `value` heavy for variable `v`?
    pub fn is_heavy(&self, v: VarId, value: u64) -> bool {
        self.per_var.get(v.0).is_some_and(|s| s.contains(&value))
    }

    /// The heavy values of a variable.
    pub fn values(&self, v: VarId) -> &BTreeSet<u64> {
        &self.per_var[v.0]
    }

    /// The variables with at least one heavy value, in `VarId` order.
    pub fn heavy_vars(&self) -> Vec<VarId> {
        (0..self.per_var.len()).filter(|&i| !self.per_var[i].is_empty()).map(VarId).collect()
    }

    /// Worst observed `frequency / threshold` ratio for a variable.
    pub fn severity(&self, v: VarId) -> f64 {
        self.severity.get(v.0).copied().unwrap_or(1.0)
    }

    /// Total number of heavy (variable, value) pairs.
    pub fn num_heavy_values(&self) -> usize {
        self.per_var.iter().map(BTreeSet::len).sum()
    }

    /// True when no variable has heavy values (skew-free as far as the
    /// detector is concerned).
    pub fn is_empty(&self) -> bool {
        self.per_var.iter().all(BTreeSet::is_empty)
    }

    /// A copy with only the listed variables' heavy sets retained; used
    /// when the plan set cannot afford a residual plan for every subset.
    pub fn restricted_to(&self, keep: &BTreeSet<VarId>) -> Self {
        let per_var =
            (0..self.per_var.len())
                .map(|i| {
                    if keep.contains(&VarId(i)) {
                        self.per_var[i].clone()
                    } else {
                        BTreeSet::new()
                    }
                })
                .collect();
        HeavyHitters { per_var, severity: self.severity.clone() }
    }

    /// Record a heavy value (used by the detector and by tests).
    pub fn insert(&mut self, v: VarId, value: u64, severity: f64) {
        self.per_var[v.0].insert(value);
        if severity > self.severity[v.0] {
            self.severity[v.0] = severity;
        }
    }
}

/// Scans a database and classifies values as heavy per query variable.
#[derive(Debug, Clone, Default)]
pub struct HeavyHitterDetector {
    policy: HeavyHitterPolicy,
}

impl HeavyHitterDetector {
    /// A detector with the given policy.
    pub fn new(policy: HeavyHitterPolicy) -> Self {
        HeavyHitterDetector { policy }
    }

    /// The policy in use.
    pub fn policy(&self) -> &HeavyHitterPolicy {
        &self.policy
    }

    /// Detect the heavy hitters of `db` with respect to the share
    /// allocation `alloc` (normally [`ShareAllocation::optimal`] for the
    /// query): a value of variable `x` is heavy when its frequency in
    /// *some* column holding `x` exceeds `scale · n_R / p_x`. Variables
    /// with share 1 are skipped (hashing does not partition them), as are
    /// atoms whose relation is absent from the database.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for statistics
    /// sources that can fail (samples, sketches).
    pub fn detect(
        &self,
        q: &Query,
        db: &Database,
        alloc: &ShareAllocation,
    ) -> Result<HeavyHitters> {
        let mut heavy = HeavyHitters::none(q.num_vars());
        for atom in q.atoms() {
            let Ok(rel) = db.relation(&atom.name) else {
                continue;
            };
            if rel.is_empty() {
                continue;
            }
            // One shared statistics pass per relation (all columns at
            // once) instead of one scan per column — but only when some
            // column can actually qualify (share > 1 and a positive
            // threshold), so atoms of unpartitioned variables cost no scan.
            let qualifies =
                |share: usize| share > 1 && self.policy.threshold(rel.len(), share) > 0.0;
            if !atom.vars.iter().any(|var| qualifies(alloc.share(*var))) {
                continue;
            }
            let histograms = frequency_histograms(rel);
            for (pos, var) in atom.vars.iter().enumerate() {
                let share = alloc.share(*var);
                if !qualifies(share) {
                    continue;
                }
                let threshold = self.policy.threshold(rel.len(), share);
                for (&value, &count) in &histograms[pos] {
                    if count as f64 > threshold {
                        heavy.insert(*var, value, count as f64 / threshold);
                    }
                }
            }
        }
        Ok(heavy)
    }

    /// Like [`HeavyHitterDetector::detect`], but against statistics that
    /// were **already collected** (exactly or from a sample) — the entry
    /// point of the adaptive runtime, where analysis, detection and
    /// planning share one [`DbStatistics`] artefact instead of scanning
    /// the database once each.
    ///
    /// In sampled mode, frequencies are the scaled in-sample counts: a
    /// value the sample missed is treated as light *everywhere* (routing
    /// stays self-consistent and outputs are unchanged), and any value the
    /// sample did catch is classified against the same `scale · n_R / p_x`
    /// threshold, so the detected set is a subset of the exact one up to
    /// the estimator's confidence slack ([`mpc_data::RelationStats::slack_for`]).
    ///
    /// # Errors
    ///
    /// Currently infallible, like [`HeavyHitterDetector::detect`].
    pub fn detect_from_stats(
        &self,
        q: &Query,
        stats: &DbStatistics,
        alloc: &ShareAllocation,
    ) -> Result<HeavyHitters> {
        let mut heavy = HeavyHitters::none(q.num_vars());
        for atom in q.atoms() {
            let Some(rs) = stats.relation(&atom.name) else {
                continue;
            };
            if rs.total() == 0 {
                continue;
            }
            for (pos, var) in atom.vars.iter().enumerate() {
                let share = alloc.share(*var);
                if share <= 1 {
                    continue;
                }
                let threshold = self.policy.threshold(rs.total(), share);
                if threshold <= 0.0 {
                    continue;
                }
                for (value, estimate) in rs.column_estimates(pos) {
                    if estimate > threshold {
                        heavy.insert(*var, value, estimate / threshold);
                    }
                }
            }
        }
        Ok(heavy)
    }
}

/// Sub-linear heavy-hitter detection from a seeded uniform sample.
///
/// Wraps [`HeavyHitterDetector`] over [`StatsMode::Sampled`] statistics:
/// the cost is `O(budget)` per relation instead of `O(n_R)`, the
/// interface (and the [`HeavyHitters`] it produces) is identical, and
/// every estimate carries the confidence slack of
/// [`mpc_data::RelationStats::slack_for`]. A hitter the sample misses is
/// *consistently* missed — the residual plans simply route its tuples
/// through the light grid, which is slower, never wrong.
///
/// # Example
///
/// ```
/// use mpc_core::shares::ShareAllocation;
/// use mpc_skew::detector::SampledDetector;
///
/// let q = mpc_cq::families::chain(2);
/// let db = mpc_data::skew::zipf_database(&q, 6000, 6000, 1.2, 5);
/// let alloc = ShareAllocation::optimal(&q, 32).unwrap();
///
/// // A 10% sample still catches the head of the Zipf distribution.
/// let detector = SampledDetector::new(Default::default(), 600, 42);
/// let heavy = detector.detect(&q, &db, &alloc).unwrap();
/// assert!(heavy.is_heavy(q.var_id("x1").unwrap(), 1));
/// ```
#[derive(Debug, Clone)]
pub struct SampledDetector {
    policy: HeavyHitterPolicy,
    budget: usize,
    seed: u64,
}

impl SampledDetector {
    /// A sampled detector drawing `budget` tuples per relation under
    /// `seed` and classifying with `policy`.
    pub fn new(policy: HeavyHitterPolicy, budget: usize, seed: u64) -> Self {
        SampledDetector { policy, budget, seed }
    }

    /// The [`StatsMode`] this detector collects under.
    pub fn mode(&self) -> StatsMode {
        StatsMode::Sampled { budget: self.budget, seed: self.seed }
    }

    /// Draw the sample and classify: same contract as
    /// [`HeavyHitterDetector::detect`], at `O(p · budget)` cost.
    ///
    /// # Errors
    ///
    /// Currently infallible.
    pub fn detect(
        &self,
        q: &Query,
        db: &Database,
        alloc: &ShareAllocation,
    ) -> Result<HeavyHitters> {
        let stats = DbStatistics::collect(db, self.mode());
        HeavyHitterDetector::new(self.policy.clone()).detect_from_stats(q, &stats, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_data::skew::{heavy_hitter_database, zipf_database};

    fn detect(q: &Query, db: &Database, p: usize) -> HeavyHitters {
        let alloc = ShareAllocation::optimal(q, p).unwrap();
        HeavyHitterDetector::default().detect(q, db, &alloc).unwrap()
    }

    #[test]
    fn matchings_have_no_heavy_hitters() {
        let q = families::chain(2);
        let db = matching_database(&q, 2000, 5);
        let heavy = detect(&q, &db, 32);
        assert!(heavy.is_empty());
        assert_eq!(heavy.num_heavy_values(), 0);
    }

    #[test]
    fn heavy_hitter_value_is_found_on_the_join_variable() {
        let q = families::chain(2);
        let db = heavy_hitter_database(&q, 2000, 2000, 0.5, 7);
        let heavy = detect(&q, &db, 32);
        // Chain(2) puts the whole hypercube on x1 (S2's first column); the
        // generator plants value 1 there.
        let x1 = q.var_id("x1").unwrap();
        assert!(heavy.is_heavy(x1, 1));
        assert_eq!(heavy.heavy_vars(), vec![x1]);
        assert!(heavy.severity(x1) > 2.0, "value 1 holds half the relation");
        // x0 and x2 have share 1: skew there is invisible by design.
        assert!(!heavy.is_heavy(q.var_id("x0").unwrap(), 1));
    }

    #[test]
    fn zipf_heavy_values_are_a_prefix_of_the_key_space() {
        let q = families::chain(2);
        let db = zipf_database(&q, 6000, 6000, 1.2, 5);
        let heavy = detect(&q, &db, 32);
        let x1 = q.var_id("x1").unwrap();
        let values = heavy.values(x1);
        assert!(!values.is_empty(), "zipf(1.2) exceeds the n/32 threshold");
        assert!(values.len() < 20, "only the head of the distribution is heavy");
        assert!(values.contains(&1), "the most frequent key is heavy");
    }

    #[test]
    fn scale_controls_sensitivity() {
        let q = families::chain(2);
        let db = zipf_database(&q, 6000, 6000, 1.0, 5);
        let alloc = ShareAllocation::optimal(&q, 32).unwrap();
        let strict = HeavyHitterDetector::new(HeavyHitterPolicy::with_scale(4.0))
            .detect(&q, &db, &alloc)
            .unwrap();
        let lax = HeavyHitterDetector::new(HeavyHitterPolicy::with_scale(0.25))
            .detect(&q, &db, &alloc)
            .unwrap();
        assert!(lax.num_heavy_values() > strict.num_heavy_values());
    }

    #[test]
    fn restriction_drops_other_variables() {
        let q = families::cycle(3);
        let db = heavy_hitter_database(&q, 2000, 2000, 0.5, 3);
        let heavy = detect(&q, &db, 27);
        assert!(heavy.heavy_vars().len() >= 2, "every relation plants a heavy first column");
        let keep: BTreeSet<VarId> = [heavy.heavy_vars()[0]].into_iter().collect();
        let restricted = heavy.restricted_to(&keep);
        assert_eq!(restricted.heavy_vars(), vec![heavy.heavy_vars()[0]]);
    }

    #[test]
    fn missing_relations_are_skipped() {
        let q = families::chain(2);
        let db = Database::new(100);
        let heavy = detect(&q, &db, 16);
        assert!(heavy.is_empty());
    }

    #[test]
    fn stats_based_detection_in_exact_mode_matches_detect() {
        let q = families::chain(2);
        for db in
            [zipf_database(&q, 6000, 6000, 1.2, 5), heavy_hitter_database(&q, 2000, 2000, 0.5, 7)]
        {
            let alloc = ShareAllocation::optimal(&q, 32).unwrap();
            let scan = HeavyHitterDetector::default().detect(&q, &db, &alloc).unwrap();
            let stats = DbStatistics::collect(&db, StatsMode::Exact);
            let from_stats =
                HeavyHitterDetector::default().detect_from_stats(&q, &stats, &alloc).unwrap();
            assert_eq!(scan, from_stats, "exact statistics are just the shared scan");
        }
    }

    /// The detector-agreement wall of the adaptive runtime: over a seeded
    /// loop of Zipf and planted heavy-hitter databases, the sampled heavy
    /// set must be a subset-with-bounded-misses of the exact one — every
    /// miss (and every extra) is *provably light-ish*, i.e. its true
    /// frequency sits within the sampling confidence slack of the
    /// threshold in every column that could have flagged it.
    #[test]
    fn sampled_heavy_set_is_subset_with_bounded_misses() {
        let q = families::chain(2);
        let p = 32;
        let budget = 900;
        for seed in 0..6u64 {
            for db in [
                zipf_database(&q, 6000, 6000, 1.1, seed),
                heavy_hitter_database(&q, 4000, 4000, 0.3, seed),
            ] {
                let alloc = ShareAllocation::optimal(&q, p).unwrap();
                let policy = HeavyHitterPolicy::default();
                let exact = HeavyHitterDetector::default().detect(&q, &db, &alloc).unwrap();
                let stats =
                    DbStatistics::collect(&db, StatsMode::Sampled { budget, seed: seed * 31 + 7 });
                let sampled =
                    HeavyHitterDetector::default().detect_from_stats(&q, &stats, &alloc).unwrap();

                // Every disagreement must be explained by the estimator's
                // slack in every (atom, column) that could flag the value.
                for atom in q.atoms() {
                    let Ok(rel) = db.relation(&atom.name) else { continue };
                    let truth = frequency_histograms(rel);
                    let rs = stats.relation(&atom.name).unwrap();
                    for (pos, var) in atom.vars.iter().enumerate() {
                        let share = alloc.share(*var);
                        if share <= 1 {
                            continue;
                        }
                        let threshold = policy.threshold(rel.len(), share);
                        for (&value, &count) in &truth[pos] {
                            let truth_f = count as f64;
                            let est = rs.estimate(pos, value);
                            let slack = rs.slack_for(truth_f.max(est));
                            let miss =
                                exact.is_heavy(*var, value) && !sampled.is_heavy(*var, value);
                            let extra =
                                sampled.is_heavy(*var, value) && !exact.is_heavy(*var, value);
                            if miss && truth_f > threshold {
                                assert!(
                                    truth_f <= threshold + slack,
                                    "seed {seed}: missed hitter {value} of {} col {pos} has \
                                     frequency {truth_f} ≫ threshold {threshold} + slack {slack}",
                                    atom.name
                                );
                            }
                            if extra && est > threshold {
                                assert!(
                                    truth_f + slack > threshold,
                                    "seed {seed}: spurious hitter {value} of {} col {pos} is \
                                     truly light: {truth_f} ≤ {threshold} − slack {slack}",
                                    atom.name
                                );
                            }
                        }
                    }
                }

                // And the planted hitter itself (half / a third of the
                // relation) is far above the slack envelope: it is NEVER
                // missed.
                let x1 = q.var_id("x1").unwrap();
                if exact.is_heavy(x1, 1) && exact.severity(x1) > 4.0 {
                    assert!(
                        sampled.is_heavy(x1, 1),
                        "seed {seed}: a dominant hitter must survive sampling"
                    );
                }
            }
        }
    }
}
