//! The skew-resilient one-round program: light tuples through the ordinary
//! HyperCube grid, heavy tuples through their residual plan's grid.
//!
//! Routing (Beame et al. 2014, Section 4): a base tuple `t` of atom `S_j`
//! has a *heavy pattern* `h(t) = {x ∈ vars(S_j) : t[x] heavy}`. The plan
//! for heavy set `H` must see exactly the `S_j`-tuples whose pattern is
//! `H ∩ vars(S_j)`, so `t` is sent to every plan `H` with
//! `H ∩ vars(S_j) = h(t)` — its own pattern's plan plus the plans that
//! additionally fix variables `t` does not mention. That cross-plan
//! replication is a factor of at most `2^{|capable ∖ vars(S_j)|}`,
//! independent of `p`, and it is what makes the outputs line up: an answer
//! whose heavy configuration is `G` is produced by plan `G` and by no
//! other, so the per-plan outputs partition the join result.
//!
//! Within a plan the routing is ordinary HyperCube over the plan's share
//! vector: heavy variables have share 1 (their single coordinate carries
//! no information — the residual shares on the light variables do the
//! balancing), and variables absent from the atom are free dimensions.
//! Destinations remain a pure function of `(tag, tuple)`, as the
//! tuple-based MPC model requires — the database statistics are consumed
//! at *planning* time, not at routing time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_core::shares::ShareAllocation;
use mpc_cq::{Atom, Query};
use mpc_data::{DbStatistics, StatsMode};
use mpc_sim::program::hash_value;
use mpc_sim::{Cluster, MpcConfig, MpcProgram, Routed, RunResult, ServerState};
use mpc_storage::{Database, Relation, Tuple};

use crate::detector::{HeavyHitterDetector, HeavyHitterPolicy};
use crate::residual::{consistent_cells, ResidualPlanSet};
use crate::Result;

/// A one-round [`MpcProgram`] that executes every residual plan of a
/// [`ResidualPlanSet`] side by side on disjoint server groups.
#[derive(Debug, Clone)]
pub struct SkewResilientProgram {
    query: Query,
    plans: ResidualPlanSet,
    /// Per-variable hash seeds, shared by every plan (a value must land on
    /// the same coordinate no matter which plan routes it).
    seeds: Vec<u64>,
}

impl SkewResilientProgram {
    /// Plan against the given database: detect heavy hitters with `policy`
    /// relative to the optimal HyperCube allocation for `p` servers, build
    /// the residual plans and bake both into a routable program.
    ///
    /// # Errors
    ///
    /// Propagates allocation and planning errors.
    pub fn new(
        query: &Query,
        db: &Database,
        p: usize,
        policy: &HeavyHitterPolicy,
        seed: u64,
    ) -> Result<Self> {
        Self::with_mode(query, db, p, policy, seed, StatsMode::Exact)
    }

    /// Like [`SkewResilientProgram::new`], but collecting the planning
    /// statistics under an explicit [`StatsMode`] — the adaptive-runtime
    /// path. One [`DbStatistics`] artefact feeds detection, pattern
    /// counting and the degree-LP share refinement, so sampled planning
    /// costs `O(p · budget)` instead of repeated full scans.
    ///
    /// # Errors
    ///
    /// Propagates allocation and planning errors.
    pub fn with_mode(
        query: &Query,
        db: &Database,
        p: usize,
        policy: &HeavyHitterPolicy,
        seed: u64,
        mode: StatsMode,
    ) -> Result<Self> {
        let base = ShareAllocation::optimal(query, p).map_err(crate::SkewError::from)?;
        let stats = DbStatistics::collect(db, mode);
        let detector = HeavyHitterDetector::new(policy.clone());
        let heavy = detector.detect_from_stats(query, &stats, &base)?;
        let plans = ResidualPlanSet::build_with_stats(query, db, heavy, p, &stats)?;
        Ok(Self::with_plans(query, plans, seed))
    }

    /// Build the program from an explicit plan set.
    pub fn with_plans(query: &Query, plans: ResidualPlanSet, seed: u64) -> Self {
        let seeds = derive_seeds(seed, query.num_vars());
        SkewResilientProgram { query: query.clone(), plans, seeds }
    }

    /// The residual plan set in use.
    pub fn plan_set(&self) -> &ResidualPlanSet {
        &self.plans
    }

    /// The index of the plan that *owns* a tuple's pattern class — the
    /// plan whose heavy set equals the tuple's own heavy pattern. Every
    /// tuple has exactly one owning plan ([`None`] only for tuples that
    /// disagree on a repeated variable and are dropped).
    pub fn owning_plan(&self, atom: &Atom, tuple: &Tuple) -> Option<usize> {
        let pattern = self.plans.heavy_pattern(atom, tuple)?;
        self.plans.plan_for_pattern(&pattern)
    }

    /// The indices of all plans a tuple is routed to: those agreeing with
    /// its pattern on the atom's variables.
    pub fn routed_plans(&self, atom: &Atom, tuple: &Tuple) -> Vec<usize> {
        let Some(pattern) = self.plans.heavy_pattern(atom, tuple) else {
            return Vec::new();
        };
        let vars = atom.distinct_vars();
        self.plans
            .plans()
            .iter()
            .enumerate()
            .filter(|(_, pl)| {
                pl.heavy_vars
                    .intersection(&vars)
                    .copied()
                    .collect::<std::collections::BTreeSet<_>>()
                    == pattern
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Destination servers of one tuple of `atom` (global indices).
    pub fn destinations(&self, atom: &Atom, tuple: &Tuple) -> Vec<usize> {
        let mut dests = Vec::new();
        for idx in self.routed_plans(atom, tuple) {
            let plan = &self.plans.plans()[idx];
            let mut partial: Vec<Option<usize>> = vec![None; self.query.num_vars()];
            for (pos, var) in atom.vars.iter().enumerate() {
                let coord =
                    hash_value(self.seeds[var.0], tuple.values()[pos], plan.shares[var.0].max(1));
                partial[var.0] = Some(coord);
            }
            dests.extend(
                consistent_cells(&plan.shares, &partial).into_iter().map(|c| plan.offset + c),
            );
        }
        dests
    }
}

impl MpcProgram for SkewResilientProgram {
    fn num_rounds(&self) -> usize {
        1
    }

    fn route_input(&self, relation: &Relation, _p: usize) -> mpc_sim::Result<Vec<Routed>> {
        let Some((_, atom)) = self.query.atom_by_name(relation.name()) else {
            // Relations not mentioned by the query are simply not shuffled.
            return Ok(Vec::new());
        };
        Ok(relation
            .iter()
            .map(|t| Routed::new(relation.name(), t.clone(), self.destinations(atom, t)))
            .collect())
    }

    fn compute(
        &self,
        _round: usize,
        _server: usize,
        _state: &ServerState,
    ) -> mpc_sim::Result<Vec<Relation>> {
        Ok(Vec::new())
    }

    fn output(&self, server: usize, state: &ServerState) -> mpc_sim::Result<Relation> {
        // Idle servers (beyond the packed plan grids) and cells that never
        // received a complete atom set report nothing.
        if self.plans.plan_of_server(server).is_none() {
            return Ok(Relation::empty(self.query.name(), self.query.num_vars()));
        }
        for atom in self.query.atoms() {
            if state.relation(&atom.name).is_none() {
                return Ok(Relation::empty(self.query.name(), self.query.num_vars()));
            }
        }
        let db = state.as_database();
        Ok(mpc_storage::join::evaluate(&self.query, &db)?)
    }

    fn output_name(&self) -> String {
        self.query.name().to_string()
    }

    fn output_arity(&self) -> usize {
        self.query.num_vars()
    }
}

/// Convenience entry point mirroring [`mpc_core::hypercube::HyperCube`]:
/// plan against the database, run on a cluster, return result + plan
/// diagnostics.
#[derive(Debug, Clone)]
pub struct SkewResilient;

/// The outcome of a skew-resilient run.
#[derive(Debug, Clone)]
pub struct SkewResilientOutcome {
    /// Simulator output and per-round statistics.
    pub result: RunResult,
    /// The residual plan set that was executed (plan shares, server
    /// groups, detected heavy values).
    pub plan_set: ResidualPlanSet,
}

impl SkewResilientOutcome {
    /// Number of residual plans (1 = no heavy hitters detected, the run
    /// was an ordinary HyperCube).
    pub fn num_plans(&self) -> usize {
        self.plan_set.plans().len()
    }

    /// Total number of detected heavy (variable, value) pairs.
    pub fn num_heavy_values(&self) -> usize {
        self.plan_set.heavy().num_heavy_values()
    }
}

impl SkewResilient {
    /// Run the skew-resilient HyperCube for `q` on `db` under the given
    /// configuration with the default detection policy and seed.
    ///
    /// # Errors
    ///
    /// Propagates planning, configuration and simulation errors.
    pub fn run(q: &Query, db: &Database, config: &MpcConfig) -> Result<SkewResilientOutcome> {
        Self::run_seeded(q, db, config, &HeavyHitterPolicy::default(), 0x5EED)
    }

    /// Run with an explicit policy and hash seed.
    ///
    /// # Errors
    ///
    /// Propagates planning, configuration and simulation errors.
    pub fn run_seeded(
        q: &Query,
        db: &Database,
        config: &MpcConfig,
        policy: &HeavyHitterPolicy,
        seed: u64,
    ) -> Result<SkewResilientOutcome> {
        Self::run_with_mode(q, db, config, policy, seed, StatsMode::Exact)
    }

    /// Run with an explicit [`StatsMode`]: `Sampled` plans from a seeded
    /// sub-linear sample instead of full scans. The *output* is identical
    /// either way — sampling moves tuples between plans, not out of the
    /// join — only load balance and planning cost differ.
    ///
    /// # Errors
    ///
    /// Propagates planning, configuration and simulation errors.
    pub fn run_with_mode(
        q: &Query,
        db: &Database,
        config: &MpcConfig,
        policy: &HeavyHitterPolicy,
        seed: u64,
        mode: StatsMode,
    ) -> Result<SkewResilientOutcome> {
        let program = SkewResilientProgram::with_mode(q, db, config.p, policy, seed, mode)?;
        let plan_set = program.plan_set().clone();
        let cluster = Cluster::new(config.clone()).map_err(crate::SkewError::from)?;
        let result = cluster.run(&program, db).map_err(crate::SkewError::from)?;
        Ok(SkewResilientOutcome { result, plan_set })
    }
}

/// Derive `k` independent per-variable seeds from one master seed (same
/// scheme as the vanilla HyperCube program).
fn derive_seeds(seed: u64, k: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k).map(|_| rng.gen()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_cq::families;
    use mpc_data::matching_database;
    use mpc_data::skew::{heavy_hitter_database, zipf_database};
    use mpc_storage::join::evaluate;

    #[test]
    fn matches_sequential_join_on_skewed_chain() {
        let q = families::chain(2);
        let db = heavy_hitter_database(&q, 1000, 1000, 0.5, 3);
        let cfg = MpcConfig::new(16, 0.0);
        let outcome = SkewResilient::run(&q, &db, &cfg).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth));
        assert_eq!(outcome.num_plans(), 2);
        assert!(outcome.num_heavy_values() >= 1);
    }

    #[test]
    fn matches_sequential_join_on_zipf_cycle() {
        let q = families::cycle(3);
        let db = zipf_database(&q, 400, 1200, 1.5, 9);
        let cfg = MpcConfig::new(27, 1.0 / 3.0);
        let outcome = SkewResilient::run(&q, &db, &cfg).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth));
    }

    #[test]
    fn skew_free_input_runs_as_plain_hypercube() {
        let q = families::triangle();
        let db = matching_database(&q, 500, 11);
        let outcome = SkewResilient::run(&q, &db, &MpcConfig::new(27, 1.0 / 3.0)).unwrap();
        assert_eq!(outcome.num_plans(), 1);
        assert_eq!(outcome.num_heavy_values(), 0);
        let truth = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth));
        assert!(outcome.result.within_budget());
    }

    #[test]
    fn each_answer_is_produced_by_exactly_one_server() {
        let q = families::chain(2);
        let db = heavy_hitter_database(&q, 800, 800, 0.4, 21);
        let outcome = SkewResilient::run(&q, &db, &MpcConfig::new(24, 0.0)).unwrap();
        let produced: usize = outcome.result.per_server_output.iter().sum();
        assert_eq!(
            produced,
            outcome.result.output.len(),
            "per-plan outputs partition the answers — no cross-server duplicates"
        );
    }

    #[test]
    fn destinations_are_deterministic_and_in_range() {
        let q = families::chain(2);
        let db = heavy_hitter_database(&q, 1000, 1000, 0.5, 3);
        let policy = HeavyHitterPolicy::default();
        let program = SkewResilientProgram::new(&q, &db, 16, &policy, 42).unwrap();
        for rel in db.relations() {
            let (_, atom) = q.atom_by_name(rel.name()).unwrap();
            for t in rel.iter() {
                let d1 = program.destinations(atom, t);
                assert!(!d1.is_empty(), "every well-formed tuple is routed somewhere");
                assert_eq!(d1, program.destinations(atom, t));
                assert!(d1.iter().all(|&s| s < 16));
                // The owning plan is among the routed plans.
                let owner = program.owning_plan(atom, t).unwrap();
                assert!(program.routed_plans(atom, t).contains(&owner));
            }
        }
    }

    #[test]
    fn sampled_planning_preserves_the_output() {
        // The core graceful-degradation property: whatever the sample saw
        // or missed, the computed join is byte-identical to the exact
        // plan's (and to the sequential truth).
        let q = families::chain(2);
        for seed in [3u64, 8, 21] {
            let db = zipf_database(&q, 3000, 3000, 1.2, seed);
            let cfg = MpcConfig::new(16, 0.0);
            let policy = HeavyHitterPolicy::default();
            let exact = SkewResilient::run_seeded(&q, &db, &cfg, &policy, 7).unwrap();
            let sampled = SkewResilient::run_with_mode(
                &q,
                &db,
                &cfg,
                &policy,
                7,
                StatsMode::Sampled { budget: 500, seed },
            )
            .unwrap();
            let truth = evaluate(&q, &db).unwrap();
            assert!(exact.result.output.same_tuples(&truth));
            assert!(sampled.result.output.same_tuples(&truth), "seed {seed}");
        }
    }

    #[test]
    fn unknown_relation_is_ignored_by_routing() {
        let q = families::chain(2);
        let db = matching_database(&q, 100, 1);
        let program =
            SkewResilientProgram::new(&q, &db, 8, &HeavyHitterPolicy::default(), 1).unwrap();
        let junk = Relation::from_tuples("Junk", 2, vec![[1u64, 2]]).unwrap();
        assert!(program.route_input(&junk, 8).unwrap().is_empty());
    }
}
