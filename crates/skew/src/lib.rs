//! **mpc-skew** — skew-resilient HyperCube processing, after *Beame,
//! Koutris & Suciu, "Skew in Parallel Query Processing" (2014,
//! arXiv:1401.1872)*.
//!
//! The HyperCube load guarantee of the PODS 2013 paper —
//! `O(n / p^{1/τ*})` per server — is stated for *skew-free* (matching)
//! databases. A single value occurring `ω(n / p_x)` times in a partitioned
//! column defeats it: every tuple carrying that value hashes to the same
//! coordinate, and one server drowns (the `exp_skew_ablation` experiment
//! measures exactly this). The 2014 follow-up recovers near-optimal load
//! when the heavy values are *known*, by processing each heavy
//! configuration with its own **residual query plan**. This crate
//! implements that machinery on top of the workspace simulator:
//!
//! * [`detector`] — [`HeavyHitterDetector`]: scans a database and, per
//!   query variable `x`, classifies values as heavy when their frequency
//!   exceeds `scale · n_R / p_x` (the share-relative threshold beyond
//!   which hashing *cannot* balance), with the tuning in
//!   [`HeavyHitterPolicy`]. [`SampledDetector`] is the sub-linear variant
//!   of the adaptive runtime: same interface, `O(budget)` per relation
//!   from a seeded sample, estimates within the confidence slack of
//!   [`mpc_data::RelationStats::slack_for`].
//! * [`residual`] — [`ResidualPlanSet`]: one plan per subset `H` of the
//!   heavy-capable variables. Each plan owns a disjoint group of servers
//!   (sized proportionally to the tuple mass it attracts), computes a
//!   [`mpc_core::shares::ShareAllocation`] for its residual query
//!   (degenerate variables get share 1) and refines it with the
//!   **degree-aware statistics LP** of [`mpc_lp::degree`].
//! * [`program`] — [`SkewResilientProgram`]: an
//!   [`mpc_sim::MpcProgram`] that routes light tuples through the ordinary
//!   HyperCube grid and heavy tuples to their residual plans' servers, so
//!   [`mpc_sim::Cluster::run`] executes it unchanged. [`SkewResilient`] is
//!   the one-call runner mirroring [`mpc_core::hypercube::HyperCube`].
//!
//! # Quick start
//!
//! ```
//! use mpc_skew::SkewResilient;
//! use mpc_sim::MpcConfig;
//!
//! // A chain join whose join variable carries a massive heavy hitter:
//! // vanilla HyperCube piles half of S2 onto one server.
//! let q = mpc_cq::families::chain(2);
//! let db = mpc_data::skew::heavy_hitter_database(&q, 2000, 2000, 0.5, 7);
//!
//! let outcome = SkewResilient::run(&q, &db, &MpcConfig::new(32, 0.0)).unwrap();
//! // The detector found the heavy value and split off a residual plan…
//! assert_eq!(outcome.num_plans(), 2);
//! // …and the output still equals the sequential join.
//! let truth = mpc_storage::join::evaluate(&q, &db).unwrap();
//! assert!(outcome.result.output.same_tuples(&truth));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod error;
pub mod program;
pub mod residual;

pub use detector::{HeavyHitterDetector, HeavyHitterPolicy, HeavyHitters, SampledDetector};
pub use error::SkewError;
pub use program::{SkewResilient, SkewResilientOutcome, SkewResilientProgram};
pub use residual::{ResidualPlan, ResidualPlanSet};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, SkewError>;
