//! Integration tests: multi-round plans and their execution, plus the
//! Table 2 round counts and the round lower bounds.

use mpc_query::core::multiround::lower_bound::round_lower_bound;
use mpc_query::core::multiround::planner::round_upper_bound;
use mpc_query::prelude::*;
use mpc_query::storage::join::evaluate;

/// Table 2: rounds at ε = 0 for the running examples, upper = lower where
/// the paper states an exact value.
#[test]
fn table_2_round_counts() {
    let cases: Vec<(Query, usize)> = vec![
        (families::chain(2), 1),
        (families::chain(4), 2),
        (families::chain(8), 3),
        (families::chain(16), 4),
        (families::star(5), 1),
        (families::spoke(3), 2),
        (families::spoke(5), 2),
    ];
    for (q, rounds) in cases {
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        assert_eq!(plan.num_rounds(), rounds, "{} plan depth", q.name());
        let lower = round_lower_bound(&q, Rational::ZERO).unwrap();
        assert_eq!(lower, rounds, "{} lower bound", q.name());
    }
}

/// The rounds/space tradeoff for chains: r ≈ log k / log(2/(1−ε)).
#[test]
fn chain_round_space_tradeoff() {
    let q = families::chain(16);
    let expectations = [
        (Rational::ZERO, 4usize),
        (Rational::new(1, 2), 2),
        // At ε = ε*(L16) = 7/8 a single round suffices.
        (Rational::new(7, 8), 1),
    ];
    for (eps, rounds) in expectations {
        let plan = MultiRoundPlan::build(&q, eps).unwrap();
        assert_eq!(plan.num_rounds(), rounds, "L16 at ε = {eps}");
        let lower = round_lower_bound(&q, eps).unwrap();
        assert!(lower <= rounds);
        assert!(rounds <= lower + 1, "gap larger than one round at ε = {eps}");
    }
}

/// Executing the plans gives exactly the sequential answer, across
/// families, exponents and server counts.
#[test]
fn multiround_execution_is_exact() {
    let cases = vec![
        (families::chain(6), Rational::ZERO, 8usize),
        (families::chain(9), Rational::new(1, 2), 27),
        (families::cycle(6), Rational::ZERO, 16),
        (families::cycle(5), Rational::new(1, 2), 9),
        (families::spoke(3), Rational::ZERO, 8),
        (families::binomial(4, 2).unwrap(), Rational::ZERO, 16),
    ];
    for (q, eps, p) in cases {
        let db = matching_database(&q, 300, 0xFEED ^ q.num_atoms() as u64);
        let outcome = MultiRound::run(&q, &db, p, eps, 5).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth), "{} at ε = {eps} on p = {p}", q.name());
    }
}

/// Lower bound ≤ plan depth ≤ radius bound, for a spread of queries and
/// exponents (Theorem 1.2's "nearly matching" statement).
#[test]
fn bounds_sandwich_plan_depth() {
    let queries = vec![
        families::chain(3),
        families::chain(7),
        families::chain(12),
        families::cycle(4),
        families::cycle(7),
        families::star(6),
        families::spoke(4),
        families::binomial(4, 2).unwrap(),
    ];
    let exponents = [Rational::ZERO, Rational::new(1, 3), Rational::new(1, 2), Rational::new(2, 3)];
    for q in &queries {
        for &eps in &exponents {
            let lower = round_lower_bound(q, eps).unwrap();
            let plan = MultiRoundPlan::build(q, eps).unwrap();
            let radius = round_upper_bound(q, eps).unwrap();
            assert!(
                lower <= plan.num_rounds(),
                "{} at ε = {eps}: lower {lower} > plan {}",
                q.name(),
                plan.num_rounds()
            );
            assert!(
                plan.num_rounds() <= radius.max(plan.num_rounds()),
                "{} at ε = {eps}",
                q.name()
            );
            // Tree-like queries: the paper's gap is at most one round.
            if q.is_tree_like() {
                assert!(
                    plan.num_rounds() <= lower + 1,
                    "{} at ε = {eps}: plan {} vs lower {lower}",
                    q.name(),
                    plan.num_rounds()
                );
            }
        }
    }
}

/// Larger ε never needs more rounds (monotonicity of the tradeoff).
#[test]
fn rounds_monotone_in_epsilon() {
    for q in [families::chain(12), families::cycle(9), families::spoke(4)] {
        let mut previous = usize::MAX;
        for eps in [Rational::ZERO, Rational::new(1, 3), Rational::new(1, 2), Rational::new(2, 3)] {
            let plan = MultiRoundPlan::build(&q, eps).unwrap();
            assert!(
                plan.num_rounds() <= previous,
                "{}: rounds increased when ε grew to {eps}",
                q.name()
            );
            previous = plan.num_rounds();
        }
    }
}
