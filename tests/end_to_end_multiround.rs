//! Integration tests: multi-round plans and their execution, plus the
//! Table 2 round counts and the round lower bounds.

use mpc_query::core::multiround::lower_bound::round_lower_bound;
use mpc_query::core::multiround::planner::round_upper_bound;
use mpc_query::prelude::*;
use mpc_query::storage::join::evaluate;

/// Table 2: rounds at ε = 0 for the running examples, upper = lower where
/// the paper states an exact value.
#[test]
fn table_2_round_counts() {
    let cases: Vec<(Query, usize)> = vec![
        (families::chain(2), 1),
        (families::chain(4), 2),
        (families::chain(8), 3),
        (families::chain(16), 4),
        (families::star(5), 1),
        (families::spoke(3), 2),
        (families::spoke(5), 2),
    ];
    for (q, rounds) in cases {
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        assert_eq!(plan.num_rounds(), rounds, "{} plan depth", q.name());
        let lower = round_lower_bound(&q, Rational::ZERO).unwrap();
        assert_eq!(lower, rounds, "{} lower bound", q.name());
    }
}

/// The rounds/space tradeoff for chains: r ≈ log k / log(2/(1−ε)).
#[test]
fn chain_round_space_tradeoff() {
    let q = families::chain(16);
    let expectations = [
        (Rational::ZERO, 4usize),
        (Rational::new(1, 2), 2),
        // At ε = ε*(L16) = 7/8 a single round suffices.
        (Rational::new(7, 8), 1),
    ];
    for (eps, rounds) in expectations {
        let plan = MultiRoundPlan::build(&q, eps).unwrap();
        assert_eq!(plan.num_rounds(), rounds, "L16 at ε = {eps}");
        let lower = round_lower_bound(&q, eps).unwrap();
        assert!(lower <= rounds);
        assert!(rounds <= lower + 1, "gap larger than one round at ε = {eps}");
    }
}

/// Executing the plans gives exactly the sequential answer, across
/// families, exponents and server counts.
#[test]
fn multiround_execution_is_exact() {
    let cases = vec![
        (families::chain(6), Rational::ZERO, 8usize),
        (families::chain(9), Rational::new(1, 2), 27),
        (families::cycle(6), Rational::ZERO, 16),
        (families::cycle(5), Rational::new(1, 2), 9),
        (families::spoke(3), Rational::ZERO, 8),
        (families::binomial(4, 2).unwrap(), Rational::ZERO, 16),
    ];
    for (q, eps, p) in cases {
        let db = matching_database(&q, 300, 0xFEED ^ q.num_atoms() as u64);
        let outcome = MultiRound::run(&q, &db, p, eps, 5).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth), "{} at ε = {eps} on p = {p}", q.name());
    }
}

/// Lower bound ≤ plan depth ≤ radius bound, for a spread of queries and
/// exponents (Theorem 1.2's "nearly matching" statement).
#[test]
fn bounds_sandwich_plan_depth() {
    let queries = vec![
        families::chain(3),
        families::chain(7),
        families::chain(12),
        families::cycle(4),
        families::cycle(7),
        families::star(6),
        families::spoke(4),
        families::binomial(4, 2).unwrap(),
    ];
    let exponents = [Rational::ZERO, Rational::new(1, 3), Rational::new(1, 2), Rational::new(2, 3)];
    for q in &queries {
        for &eps in &exponents {
            let lower = round_lower_bound(q, eps).unwrap();
            let plan = MultiRoundPlan::build(q, eps).unwrap();
            let radius = round_upper_bound(q, eps).unwrap();
            assert!(
                lower <= plan.num_rounds(),
                "{} at ε = {eps}: lower {lower} > plan {}",
                q.name(),
                plan.num_rounds()
            );
            assert!(
                plan.num_rounds() <= radius.max(plan.num_rounds()),
                "{} at ε = {eps}",
                q.name()
            );
            // Tree-like queries: the paper's gap is at most one round.
            if q.is_tree_like() {
                assert!(
                    plan.num_rounds() <= lower + 1,
                    "{} at ε = {eps}: plan {} vs lower {lower}",
                    q.name(),
                    plan.num_rounds()
                );
            }
        }
    }
}

/// Lemma 3.4's view sizing (`s^{1+χ}`) on **cyclic** operators. For a
/// connected query `χ = k + ℓ − a − c ≤ 0`, with equality exactly for
/// tree-like shapes — so the only branch of the executor's view-size
/// estimate the tree-like tests cannot reach is `χ < 0`, where the
/// operator's view is *smaller* than its inputs (`n^{1+χ} < n`; a cycle
/// closure over matchings expects ~1 answer). This pins that branch and
/// checks the per-round prediction still brackets the simulation.
#[test]
fn cyclic_operators_cover_the_negative_chi_view_sizing() {
    let n = 400u64;
    for (q, p) in [(families::cycle(4), 16usize), (families::cycle(6), 8)] {
        assert!(q.characteristic() < 0, "{} is cyclic", q.name());
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        assert!(plan.num_rounds() >= 2, "{} needs multiple rounds at ε = 0", q.name());
        // The plan's final operator closes the cycle: its sub-query keeps
        // χ < 0 (contraction deletes tree-like pieces, never the cycle).
        let cyclic_ops: Vec<_> = plan
            .levels()
            .iter()
            .flat_map(|level| &level.operators)
            .filter(|op| op.query.characteristic() < 0)
            .collect();
        assert!(!cyclic_ops.is_empty(), "{} plan has a cyclic operator", q.name());

        let pred = plan.predict_loads(p, n).unwrap();
        for op in &pred.operators {
            let chi = cyclic_ops
                .iter()
                .find(|c| c.view_name == op.view_name)
                .map(|c| c.query.characteristic());
            if let Some(chi) = chi {
                // s^{1+χ} with χ = −1: the expected cycle closure over
                // matchings is a single answer-slot.
                assert_eq!(chi, -1, "{}: cycle closures have χ = −1", q.name());
                assert_eq!(op.output_tuples, 1.0, "{}: view size n^0", q.name());
            }
        }

        // The prediction still brackets a real run on a matching.
        let db = matching_database(&q, n, 29);
        let outcome = MultiRound::run(&q, &db, p, Rational::ZERO, 5).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth), "{} exactness", q.name());
        for row in pred.compare(&outcome.result).unwrap() {
            assert!(
                row.simulated_max_tuples as f64 <= 4.0 * row.predicted_tuples + 16.0,
                "{} round {}: measured {} escapes 4 × {:.1} + 16",
                q.name(),
                row.round,
                row.simulated_max_tuples,
                row.predicted_tuples
            );
        }
    }
}

/// Larger ε never needs more rounds (monotonicity of the tradeoff).
#[test]
fn rounds_monotone_in_epsilon() {
    for q in [families::chain(12), families::cycle(9), families::spoke(4)] {
        let mut previous = usize::MAX;
        for eps in [Rational::ZERO, Rational::new(1, 3), Rational::new(1, 2), Rational::new(2, 3)] {
            let plan = MultiRoundPlan::build(&q, eps).unwrap();
            assert!(
                plan.num_rounds() <= previous,
                "{}: rounds increased when ε grew to {eps}",
                q.name()
            );
            previous = plan.num_rounds();
        }
    }
}
