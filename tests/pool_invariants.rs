//! Property tests of the size-classed block pool behind the columnar data
//! plane (`mpc_sim::pool`): a seeded loop over real async runs asserting
//! the checkout/return balance, plus direct concurrent storms on a shared
//! pool asserting no buffer is ever aliased to two holders and that size
//! classes actually recycle under parallel churn.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use mpc_query::core::hypercube::HyperCubeProgram;
use mpc_query::cq::families;
use mpc_query::prelude::*;
use mpc_query::sim::BlockPool;

/// Every clean async run returns every block it checked out — across
/// random queries, block capacities and queue capacities — and a pool
/// that never allocates mid-run steady state shows real reuse.
#[test]
fn seeded_runs_balance_the_pool() {
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for case in 0..16 {
        let q = match rng.gen_range(0..3usize) {
            0 => families::chain(rng.gen_range(2..4)),
            1 => families::star(rng.gen_range(2..4)),
            _ => families::triangle(),
        };
        let n = rng.gen_range(100..400u64);
        let p = [4usize, 8, 9][rng.gen_range(0..3usize)];
        let db = matching_database(&q, n, rng.gen());
        let program = HyperCubeProgram::new(&q, p, rng.gen()).unwrap();
        let cluster = Cluster::new(MpcConfig::new(p, 1.0)).unwrap();
        let async_cfg = AsyncConfig::new()
            .with_block_capacity(1 << rng.gen_range(0..9usize))
            .with_queue_capacity(1 << rng.gen_range(0..6usize));
        let run = cluster.run_async(&program, &db, &async_cfg).unwrap();
        let pool = &run.pool;
        assert!(pool.balanced(), "case {case}: pool unbalanced: {pool:?}");
        assert_eq!(pool.outstanding(), 0, "case {case}");
        assert_eq!(
            pool.allocated + pool.reused,
            pool.checked_out,
            "case {case}: every checkout is a hit or a miss"
        );
    }
}

/// A rayon storm over one shared pool: each task stamps its checked-out
/// buffers with a unique value and verifies the stamp before returning
/// them. If the pool ever handed one buffer to two concurrent holders,
/// a stamp would be clobbered.
#[test]
fn concurrent_checkout_never_aliases_buffers() {
    let pool = BlockPool::new();
    let tasks: Vec<u64> = (1..=64).collect();
    let clean: Vec<bool> = tasks
        .par_iter()
        .map(|&stamp| {
            for iter in 0..32 {
                let arity = ((stamp + iter) % 3 + 1) as usize;
                let mut buf = pool.checkout(arity, 16);
                if !buf.is_empty() {
                    return false; // stale rows from another holder
                }
                let row = vec![stamp; arity];
                for _ in 0..16 {
                    buf.push(&row);
                }
                let stamped = (0..arity).all(|c| buf.column(c).iter().all(|&v| v == stamp));
                pool.give_back(buf);
                if !stamped {
                    return false;
                }
            }
            true
        })
        .collect();
    assert!(clean.into_iter().all(|ok| ok), "a buffer was aliased or returned dirty");

    let stats = pool.stats();
    assert!(stats.balanced(), "storm left the pool unbalanced: {stats:?}");
    assert_eq!(stats.checked_out, 64 * 32);
    // 2048 checkouts over 3 size classes cannot all miss: the free lists
    // must have served a substantial share.
    assert!(stats.reused > 0, "no size-class reuse under churn: {stats:?}");
    // Bounded retention per class, even after the storm.
    for arity in 0..4 {
        assert!(pool.free_in_class(arity) <= BlockPool::MAX_FREE_PER_CLASS);
    }
}
