//! Cross-solver agreement property test for the LP layer.
//!
//! For 200 seeded random queries — acyclic (random trees), cyclic (random
//! spanning path plus chords), mixed-arity hypergraphs, and renamed/
//! permuted instances of the recognised families — the three solver paths
//! must agree **exactly** (rational equality, no epsilons):
//!
//! * the dense tableau oracle (`QueryLps::solve_dense`),
//! * the sparse revised simplex (`QueryLps::solve_sparse`), and
//! * when the family is recognised, the closed form
//!   (`mpc_lp::families::closed_form`),
//!
//! on `τ*`, the feasibility of every returned cover/packing/edge-cover,
//! and LP duality (`cover total == packing total`). The cached fast path
//! (`QueryLps::solve`) is exercised on top, which also validates the
//! canonical-signature transport of the memoising cache.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_query::cq::{families, Query};
use mpc_query::lp::{QueryLps, Rational};

/// Number of random queries checked.
const CASES: usize = 200;

/// Master seed of the deterministic generator.
const CASE_SEED: u64 = 0x1A9_BEA3E;

/// Build one random query; the mix covers trees, cyclic graphs, higher
/// arities and renamed family instances.
fn random_query(rng: &mut StdRng, case: usize) -> Query {
    match case % 4 {
        // Random tree (acyclic): every variable links to a random earlier one.
        0 => {
            let k = rng.gen_range(2usize..8);
            let atoms: Vec<(String, Vec<String>)> = (1..k)
                .map(|i| {
                    let parent = rng.gen_range(0usize..i);
                    (format!("E{i}"), vec![format!("x{parent}"), format!("x{i}")])
                })
                .collect();
            Query::new(format!("tree{case}"), atoms).expect("valid tree query")
        }
        // Spanning path plus random chords (cyclic).
        1 => {
            let k = rng.gen_range(3usize..8);
            let mut atoms: Vec<(String, Vec<String>)> = (1..k)
                .map(|i| (format!("P{i}"), vec![format!("x{}", i - 1), format!("x{i}")]))
                .collect();
            for j in 0..rng.gen_range(1usize..4) {
                let a = rng.gen_range(0usize..k);
                let b = rng.gen_range(0usize..k);
                if a != b {
                    atoms.push((format!("C{j}"), vec![format!("x{a}"), format!("x{b}")]));
                }
            }
            Query::new(format!("cyc{case}"), atoms).expect("valid cyclic query")
        }
        // Mixed arities: random hyperedges of size 1..=3.
        2 => {
            let k = rng.gen_range(2usize..7);
            let l = rng.gen_range(2usize..6);
            let atoms: Vec<(String, Vec<String>)> = (0..l)
                .map(|j| {
                    let arity = rng.gen_range(1usize..4);
                    let vars =
                        (0..arity).map(|_| format!("x{}", rng.gen_range(0usize..k))).collect();
                    (format!("H{j}"), vars)
                })
                .collect();
            Query::new(format!("hyp{case}"), atoms).expect("valid hypergraph query")
        }
        // A family instance with shuffled atom order and fresh names, so
        // recognition (and the closed form) must work up to renaming.
        _ => {
            let q = match rng.gen_range(0usize..5) {
                0 => families::cycle(rng.gen_range(2usize..10)),
                1 => families::chain(rng.gen_range(1usize..10)),
                2 => families::star(rng.gen_range(1usize..8)),
                3 => families::spoke(rng.gen_range(1usize..5)),
                _ => families::binomial(rng.gen_range(2usize..6), 2).expect("valid"),
            };
            let mut atoms: Vec<(String, Vec<String>)> = q
                .atoms()
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    (format!("R{i}"), a.vars.iter().map(|v| format!("v{}", v.0)).collect())
                })
                .collect();
            // Deterministic shuffle by rotation + swap.
            let rot = rng.gen_range(0usize..atoms.len());
            atoms.rotate_left(rot);
            if atoms.len() > 1 {
                let s = rng.gen_range(0usize..atoms.len() - 1);
                atoms.swap(s, s + 1);
            }
            Query::new(format!("fam{case}"), atoms).expect("valid renamed family")
        }
    }
}

#[test]
fn all_solver_paths_agree_on_200_random_queries() {
    let mut rng = StdRng::seed_from_u64(CASE_SEED);
    let mut closed_form_cases = 0usize;
    for case in 0..CASES {
        let q = random_query(&mut rng, case);
        let check = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let dense = QueryLps::solve_dense(&q).expect("dense oracle solves");
            let sparse = QueryLps::solve_sparse(&q).expect("sparse solver solves");

            // τ* agreement, exactly.
            assert_eq!(dense.covering_number(), sparse.covering_number(), "τ* dense vs sparse");
            assert_eq!(
                dense.edge_cover().total(),
                sparse.edge_cover().total(),
                "edge cover dense vs sparse"
            );

            // Feasibility and duality of both solvers' solutions.
            for (label, lps) in [("dense", &dense), ("sparse", &sparse)] {
                assert!(lps.vertex_cover().is_valid_for(&q), "{label} cover feasible");
                assert!(lps.edge_packing().is_valid_for(&q), "{label} packing feasible");
                assert!(lps.edge_cover().is_valid_for(&q), "{label} edge cover feasible");
                assert_eq!(
                    lps.vertex_cover().total(),
                    lps.edge_packing().total(),
                    "{label} duality"
                );
                assert!(lps.covering_number() >= Rational::ONE, "{label} τ* ≥ 1");
            }

            // Closed form, when the family is recognised.
            if let Some((family, closed)) = mpc_query::lp::families::closed_form(&q) {
                assert_eq!(
                    closed.covering_number(),
                    dense.covering_number(),
                    "closed form {family} τ*"
                );
                assert_eq!(
                    closed.edge_cover().total(),
                    dense.edge_cover().total(),
                    "closed form {family} edge cover"
                );
                assert!(closed.vertex_cover().is_valid_for(&q));
                assert!(closed.edge_packing().is_valid_for(&q));
                assert!(closed.edge_cover().is_valid_for(&q));
                true
            } else {
                false
            }
        }));
        match check {
            Ok(true) => closed_form_cases += 1,
            Ok(false) => {}
            Err(panic) => {
                eprintln!("lp agreement failed on case {case}: {q}");
                std::panic::resume_unwind(panic);
            }
        }
    }
    // The family quarter of the generator must actually exercise the
    // closed forms.
    assert!(closed_form_cases >= CASES / 8, "only {closed_form_cases} closed-form cases");
}

/// Closed-form pins for the clique family `K_k`: the fractional vertex
/// cover puts 1/2 on every vertex and the fractional edge cover
/// `1/(k-1)` on every edge, so `τ* = ρ* = k/2` exactly — the equality
/// that makes cliques the worst case for the one-round/multi-round
/// crossover (the AGM and one-round targets coincide on skew-free data).
/// All three solver paths must pin these rationals exactly.
#[test]
fn clique_closed_forms_pin_tau_and_rho_at_k_halves() {
    for k in 3usize..=6 {
        let q = families::clique(k).expect("valid clique");
        let expected = Rational::new(k as i128, 2);
        let dense = QueryLps::solve_dense(&q).expect("dense oracle solves");
        let sparse = QueryLps::solve_sparse(&q).expect("sparse solver solves");
        let fast = QueryLps::solve(&q).expect("fast path solves");
        for (label, lps) in [("dense", &dense), ("sparse", &sparse), ("fast", &fast)] {
            assert_eq!(lps.covering_number(), expected, "K{k} τ* via {label}");
            assert_eq!(lps.edge_cover().total(), expected, "K{k} ρ* via {label}");
            assert!(lps.vertex_cover().is_valid_for(&q), "K{k} {label} cover feasible");
            assert!(lps.edge_cover().is_valid_for(&q), "K{k} {label} edge cover feasible");
            assert_eq!(
                lps.vertex_cover().total(),
                lps.edge_packing().total(),
                "K{k} {label} duality"
            );
        }
        // K3 is recognised as the cycle C3, larger cliques as B_{k,2};
        // either way the closed form exists and pins the same optima.
        let (family, closed) =
            mpc_query::lp::families::closed_form(&q).expect("cliques have a closed form");
        assert_eq!(closed.covering_number(), expected, "K{k} closed form ({family}) τ*");
        assert_eq!(closed.edge_cover().total(), expected, "K{k} closed form ({family}) ρ*");
    }
}

#[test]
fn cached_fast_path_agrees_and_transports_validly() {
    let mut rng = StdRng::seed_from_u64(CASE_SEED ^ 0x5EED);
    for case in 0..CASES / 4 {
        let q = random_query(&mut rng, case);
        let fast = QueryLps::solve(&q).expect("fast path solves");
        let dense = QueryLps::solve_dense(&q).expect("dense oracle solves");
        assert_eq!(fast.covering_number(), dense.covering_number(), "fast path τ* on {q}");
        assert!(fast.vertex_cover().is_valid_for(&q), "fast path cover feasible on {q}");
        assert!(fast.edge_packing().is_valid_for(&q), "fast path packing feasible on {q}");
        assert!(fast.edge_cover().is_valid_for(&q), "fast path edge cover feasible on {q}");
        // Twice more: whatever mixture of cache hits this produces must
        // transport to identical optima.
        let again = QueryLps::solve(&q).expect("fast path solves twice");
        assert_eq!(again.covering_number(), fast.covering_number());
        assert!(again.vertex_cover().is_valid_for(&q));
    }
}
