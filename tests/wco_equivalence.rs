//! The WCO differential wall: the worst-case optimal heavy/light program
//! must answer **exactly** what the sequential join and the one-round
//! HyperCube answer — on every backend and every transport this
//! workspace ships.
//!
//! Matrix: queries {C3, C4, K4, skewed C3/C4/K4 instances} ×
//! {synchronous `Cluster::run`, event-driven `run_async` at block
//! capacities 1 / 64 / 4096, in-process channel transport, localhost
//! TCP}. Swapping the execution substrate may change schedules and packet
//! boundaries, never the answer set, the per-round volumes or the
//! per-server output counts.

use mpc_query::core::hypercube::HyperCubeProgram;
use mpc_query::core::wco::WcoProgram;
use mpc_query::data::skew::heavy_hitter_database;
use mpc_query::net::{run_transport_differential, DistConfig, TransportKind};
use mpc_query::prelude::*;
use mpc_query::sim::run_differential;
use mpc_query::storage::join::evaluate;

/// The test matrix: (label, query, database, p). Skewed instances are
/// sized so the planted degree crosses the heavy threshold
/// (`deg · share > |R|`), forcing the two-round staging + broadcast path;
/// matchings stay skew-free and collapse WCO to the light HyperCube.
fn cases() -> Vec<(String, Query, Database, usize)> {
    let c3 = families::triangle();
    let c4 = families::cycle(4);
    let k4 = families::clique(4).expect("K4 is a valid clique");
    vec![
        ("C3 matching".into(), c3.clone(), matching_database(&c3, 600, 11), 8),
        ("C4 matching".into(), c4.clone(), matching_database(&c4, 500, 12), 8),
        ("K4 matching".into(), k4.clone(), matching_database(&k4, 400, 13), 8),
        // 0.6 · 800 = 480 planted copies; 480 · 2 > 800, so the heavy
        // side activates at the p = 8 cover shares.
        ("C3 skewed".into(), c3.clone(), heavy_hitter_database(&c3, 600, 800, 0.6, 14), 8),
        ("C4 skewed".into(), c4.clone(), heavy_hitter_database(&c4, 600, 800, 0.6, 15), 8),
        // K4 stays small: the sequential evaluator's greedy order joins
        // the three x1-atoms first, producing Θ(deg³) partials on the
        // heavy key — deg = 0.55 · 150 ≈ 83 keeps that tractable while
        // 83 · 2 > 150 still crosses the heavy threshold.
        ("K4 skewed".into(), k4.clone(), heavy_hitter_database(&k4, 300, 150, 0.55, 16), 8),
    ]
}

#[test]
fn wco_matches_sequential_join_and_hypercube_on_the_sync_backend() {
    for (label, q, db, p) in cases() {
        let truth = evaluate(&q, &db).expect("sequential join evaluates");
        let cfg = MpcConfig::new(p, 0.9);
        let cluster = Cluster::new(cfg.clone()).expect("valid config");

        let hc = HyperCubeProgram::new(&q, p, 42).expect("HC program builds");
        let hc_run = cluster.run(&hc, &db).expect("HC run succeeds");
        assert!(hc_run.output.same_tuples(&truth), "{label}: HyperCube vs sequential");

        let wco = WcoProgram::new(&q, &db, p, 42).expect("WCO program builds");
        let wco_run = cluster.run(&wco, &db).expect("WCO run succeeds");
        assert!(wco_run.output.same_tuples(&truth), "{label}: WCO vs sequential");
        assert!(wco_run.output.same_tuples(&hc_run.output), "{label}: WCO vs HyperCube");
        if label.ends_with("skewed") {
            assert_eq!(wco_run.num_rounds(), 2, "{label}: heavy side activates");
        } else {
            assert_eq!(wco_run.num_rounds(), 1, "{label}: matchings stay one-round");
        }
    }
}

#[test]
fn wco_is_backend_independent_across_block_capacities() {
    for (label, q, db, p) in cases() {
        let truth = evaluate(&q, &db).expect("sequential join evaluates");
        let cluster = Cluster::new(MpcConfig::new(p, 0.9)).expect("valid config");
        let wco = WcoProgram::new(&q, &db, p, 7).expect("WCO program builds");
        for block in [1usize, 64, 4096] {
            let async_cfg = AsyncConfig::new().with_block_capacity(block);
            let report = run_differential(&cluster, &wco, &db, &async_cfg)
                .unwrap_or_else(|e| panic!("{label} block={block}: differential failed: {e}"));
            assert_eq!(
                report.divergence(),
                None,
                "{label} block={block}: sync and async backends diverged"
            );
            assert!(
                report.synchronous.output.same_tuples(&truth),
                "{label} block={block}: output is not the sequential join"
            );
        }
    }
}

#[test]
fn wco_is_transport_independent_in_process_and_tcp() {
    for (label, q, db, p) in cases() {
        let truth = evaluate(&q, &db).expect("sequential join evaluates");
        let cluster = Cluster::new(MpcConfig::new(p, 0.9)).expect("valid config");
        let wco = WcoProgram::new(&q, &db, p, 9).expect("WCO program builds");
        // One call runs the sync reference, the in-process channel fabric
        // and real localhost TCP sockets, and diffs all three.
        let dist = DistConfig { transport: TransportKind::Tcp, ..DistConfig::default() };
        let diff = run_transport_differential(&cluster, &wco, &db, &dist)
            .unwrap_or_else(|e| panic!("{label}: transport differential failed: {e}"));
        assert_eq!(diff.divergence(), None, "{label}: transports diverged");
        assert!(
            diff.reference.output.same_tuples(&truth),
            "{label}: reference output is not the sequential join"
        );
    }
}
