//! Integration tests: one-round (HyperCube) evaluation across crates.
//!
//! Every test runs the full pipeline — query analysis (LP), share
//! allocation, HyperCube shuffle on the simulated cluster, local joins —
//! and checks the output against the sequential join engine plus the
//! communication bounds of Proposition 3.2.

use mpc_query::core::baseline::{BroadcastProgram, SingleKeyShuffleProgram};
use mpc_query::prelude::*;
use mpc_query::sim::Cluster;
use mpc_query::storage::join::evaluate;

/// HC is exact on every running-example family from Table 1.
#[test]
fn hypercube_matches_sequential_join_on_table1_families() {
    let queries = vec![
        families::cycle(3),
        families::cycle(4),
        families::cycle(5),
        families::chain(2),
        families::chain(3),
        families::chain(4),
        families::star(2),
        families::star(4),
        families::binomial(3, 2).unwrap(),
        families::spoke(2),
    ];
    for q in queries {
        let db = matching_database(&q, 400, 0xABC + q.num_atoms() as u64);
        let eps = space_exponent(&q).unwrap();
        let cfg = MpcConfig::new(16, eps.to_f64());
        let run = HyperCube::run(&q, &db, &cfg).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        assert!(
            run.result.output.same_tuples(&truth),
            "{}: HC output differs from sequential join",
            q.name()
        );
        assert_eq!(run.result.num_rounds(), 1, "{}", q.name());
    }
}

/// At the space exponent, the HC load respects the O(N/p^{1−ε}) budget on
/// matching databases (Proposition 3.2) — and the load drops as p grows.
#[test]
fn hypercube_load_scales_with_p() {
    let q = families::triangle();
    let n = 8000;
    let db = matching_database(&q, n, 5);
    let eps = space_exponent(&q).unwrap().to_f64();
    let mut previous_load = u64::MAX;
    for p in [8usize, 64, 512] {
        let run = HyperCube::run(&q, &db, &MpcConfig::new(p, eps)).unwrap();
        assert!(run.result.within_budget(), "p = {p} exceeds budget");
        let load = run.result.max_load_bytes();
        assert!(
            load < previous_load,
            "load should shrink as p grows: p = {p}, load {load} >= previous {previous_load}"
        );
        previous_load = load;
        // Replication rate ≈ p^ε (within a factor ~2 for integer shares).
        let rate = run.result.rounds[0].replication_rate;
        let allowed = (p as f64).powf(eps);
        assert!(rate <= allowed * 1.5 + 1.0, "p = {p}: rate {rate} vs p^ε = {allowed}");
    }
}

/// The three one-round strategies compared on a star query (the only shape
/// where all three are correct): single-key shuffle ≤ HyperCube ≪ broadcast
/// in per-server load.
#[test]
fn one_round_strategy_load_ordering() {
    let q = families::star(3);
    let db = matching_database(&q, 2000, 9);
    let cfg = MpcConfig::new(32, 0.0);

    let hc = HyperCube::run(&q, &db, &cfg).unwrap();
    let cluster = Cluster::new(cfg).unwrap();
    let shuffle = cluster.run(&SingleKeyShuffleProgram::new(&q, 1).unwrap(), &db).unwrap();
    let broadcast = cluster.run(&BroadcastProgram::new(q.clone()), &db).unwrap();

    let truth = evaluate(&q, &db).unwrap();
    for (name, result) in [("hc", &hc.result), ("shuffle", &shuffle), ("broadcast", &broadcast)] {
        assert!(result.output.same_tuples(&truth), "{name} output mismatch");
    }
    assert!(shuffle.max_load_bytes() <= hc.result.max_load_bytes() * 2);
    assert!(hc.result.max_load_bytes() * 4 < broadcast.max_load_bytes());
}

/// Below the space exponent, the partial HyperCube reports roughly the
/// 1/p^{τ*(1−ε)−1} fraction of answers that Theorem 3.3 allows — and the
/// reported fraction shrinks as p grows.
#[test]
fn partial_answers_fraction_decays_with_p() {
    let q = families::chain(3); // τ* = 2
    let n = 6000u64;
    let db = matching_database(&q, n, 3);
    let mut previous_fraction = f64::INFINITY;
    for p in [4usize, 16, 64] {
        let outcome = PartialHyperCube::run(&q, &db, p, Rational::ZERO, 7).unwrap();
        let reported = outcome.result.output.len() as f64 / n as f64;
        let predicted = 1.0 / p as f64; // 1/p^{τ*(1−ε)−1} with τ* = 2, ε = 0
        assert!(reported < previous_fraction + 1e-9, "reported fraction should shrink with p");
        assert!(
            reported <= predicted * 3.0 + 0.01,
            "p = {p}: reported {reported} far above predicted {predicted}"
        );
        previous_fraction = reported;
    }
}

/// The JOIN-WITNESS hard instance of Proposition 3.12: with √n-sized unary
/// endpoints the query has about one answer; a one-round ε = 0 algorithm
/// almost never finds it, while the two-round plan always does.
#[test]
fn join_witness_hard_instance() {
    use mpc_query::data::matching_database as matchings;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    let q = families::witness_query();
    let n: u64 = 2500;
    let sqrt_n = 50u64;
    let mut rng = StdRng::seed_from_u64(17);

    // S1, S2, S3 are matchings; R and T are random √n-subsets of [n].
    let base = matchings(&q, n, 100);
    let mut db = Database::new(n);
    for name in ["S1", "S2", "S3"] {
        db.insert_relation(base.relation(name).unwrap().clone());
    }
    let mut r = Relation::empty("R", 1);
    let mut t = Relation::empty("T", 1);
    while (r.len() as u64) < sqrt_n {
        r.insert(Tuple(vec![rng.gen_range(1..=n)])).unwrap();
    }
    while (t.len() as u64) < sqrt_n {
        t.insert(Tuple(vec![rng.gen_range(1..=n)])).unwrap();
    }
    db.insert_relation(r);
    db.insert_relation(t);

    let truth = evaluate(&q, &db).unwrap();
    // Expected ≈ 1 answer; the random instance may have a few or none.
    assert!(truth.len() <= 10);

    // The multi-round plan at ε = 1/2 finds exactly the true answers.
    let outcome = MultiRound::run(&q, &db, 16, Rational::new(1, 2), 3).unwrap();
    assert!(outcome.result.output.same_tuples(&truth));
}

/// Skew ablation: on a Zipf-skewed input the HyperCube load balance
/// degrades compared to a matching database (the guarantee of Prop 3.2 is
/// for matchings only).
#[test]
fn skewed_inputs_degrade_balance() {
    use mpc_query::data::skew::zipf_database;
    let q = families::chain(2);
    let n = 4000u64;
    let p = 32;
    let eps = 0.0;

    let matching = matching_database(&q, n, 1);
    let skewed = zipf_database(&q, n, n as usize, 1.2, 1);

    let balanced = HyperCube::run(&q, &matching, &MpcConfig::new(p, eps)).unwrap();
    let unbalanced = HyperCube::run(&q, &skewed, &MpcConfig::new(p, eps)).unwrap();

    let b = balanced.result.rounds[0].balance_ratio;
    let u = unbalanced.result.rounds[0].balance_ratio;
    assert!(b < 2.0, "matching database should be well balanced, ratio {b}");
    assert!(u > b * 1.5, "skewed input should be notably less balanced ({u} vs {b})");
}
