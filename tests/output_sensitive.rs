//! Property suite for the journal version's output-sensitive bounds
//! (arXiv:1602.06236).
//!
//! Over 100+ seeded random connected queries and planted databases with a
//! random output cardinality `m`, the proven bracket must hold for every
//! simulated one-round HyperCube run:
//!
//! ```text
//!   (m/p)^{1/ρ*}  ≤  simulated max tuples  ≤  (Σⱼ n·replⱼ/cells) · slack
//! ```
//!
//! together with the generator's exactness guarantee (`|q(I)| = m`), the
//! per-server emission bound (`max emitted ≥ m/p`) and correctness against
//! the sequential join. Closed-form unit tests pin the journal's worked
//! examples (cycles, stars, chains) in `crates/core/src/output_sensitive.rs`;
//! this suite covers the irregular queries those families miss.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_query::core::analysis::QueryAnalysis;
use mpc_query::core::hypercube::HyperCube;
use mpc_query::core::multiround::executor::MultiRound;
use mpc_query::core::multiround::planner::MultiRoundPlan;
use mpc_query::cq::{families, Query};
use mpc_query::data::matching_database;
use mpc_query::data::output_controlled_database;
use mpc_query::lp::Rational;
use mpc_query::sim::MpcConfig;
use mpc_query::storage::join::evaluate;

/// Number of random cases.
const CASES: usize = 120;

/// Master seed of the deterministic generator.
const CASE_SEED: u64 = 0xB_0091;

/// Hash-imbalance slack for the upper side of the bracket (small inputs
/// have noisy bucket maxima; the bound itself is the expected value).
const SLACK: f64 = 3.0;

/// Build one random **connected** query: trees, paths with chords, and
/// renamed family instances (the same mix as the LP agreement suite,
/// restricted to connected shapes so the planted generator applies).
fn random_connected_query(rng: &mut StdRng, case: usize) -> Query {
    loop {
        let q = match case % 3 {
            0 => {
                let k = rng.gen_range(3usize..7);
                let atoms: Vec<(String, Vec<String>)> = (1..k)
                    .map(|i| {
                        let parent = rng.gen_range(0usize..i);
                        (format!("E{i}"), vec![format!("x{parent}"), format!("x{i}")])
                    })
                    .collect();
                Query::new(format!("tree{case}"), atoms).expect("valid tree query")
            }
            1 => {
                let k = rng.gen_range(3usize..7);
                let mut atoms: Vec<(String, Vec<String>)> = (1..k)
                    .map(|i| (format!("P{i}"), vec![format!("x{}", i - 1), format!("x{i}")]))
                    .collect();
                for j in 0..rng.gen_range(1usize..3) {
                    let a = rng.gen_range(0usize..k);
                    let b = rng.gen_range(0usize..k);
                    if a != b {
                        atoms.push((format!("C{j}"), vec![format!("x{a}"), format!("x{b}")]));
                    }
                }
                Query::new(format!("cyc{case}"), atoms).expect("valid cyclic query")
            }
            _ => match rng.gen_range(0usize..4) {
                0 => families::cycle(rng.gen_range(3usize..7)),
                1 => families::chain(rng.gen_range(2usize..7)),
                2 => families::star(rng.gen_range(2usize..6)),
                _ => families::spoke(rng.gen_range(2usize..4)),
            },
        };
        if q.is_connected() && q.num_atoms() >= 2 {
            return q;
        }
    }
}

#[test]
fn bracket_holds_on_120_random_queries_and_databases() {
    let mut rng = StdRng::seed_from_u64(CASE_SEED);
    let mut checked = 0usize;
    for case in 0..CASES {
        let q = random_connected_query(&mut rng, case);
        let n = rng.gen_range(40u64..=120);
        let m = rng.gen_range(0u64..=n);
        let p = [4usize, 8, 16][rng.gen_range(0usize..3)];
        let planted = output_controlled_database(&q, n, m, 1000 + case as u64);

        // Generator exactness: the planted cardinality is the join size.
        let truth = evaluate(&q, &planted.db).expect("sequential join");
        assert_eq!(truth.len() as u64, m, "{} planted cardinality", q.name());

        let analysis = QueryAnalysis::analyze(&q).expect("LP solvable");
        let bounds = analysis.output_bounds(n, m, p).expect("bounds computable");
        let cfg = MpcConfig::new(p, analysis.space_exponent.to_f64());
        let run = HyperCube::run(&q, &planted.db, &cfg).expect("HyperCube run");

        // Correctness of the run itself.
        assert!(
            run.result.output.same_tuples(&truth),
            "{} case {case}: HyperCube output diverges",
            q.name()
        );

        // The proven bracket.
        let verdict = bounds
            .bracket(&q, &run.allocation, run.result.max_load_tuples(), SLACK)
            .expect("bracket computable");
        assert!(
            verdict.lower_ok,
            "{} case {case} (n={n}, m={m}, p={p}): simulated {} beats the emission bound {}",
            q.name(),
            verdict.simulated_max_tuples,
            verdict.lower_tuples
        );
        assert!(
            verdict.upper_ok,
            "{} case {case} (n={n}, m={m}, p={p}): simulated {} above upper {} × {SLACK}",
            q.name(),
            verdict.simulated_max_tuples,
            verdict.rounded_upper_tuples
        );

        // Per-server emission: some server emits at least m/p answers.
        let max_emitted = run.result.per_server_output.iter().copied().max().unwrap_or(0);
        assert!(
            max_emitted as f64 + 1e-9 >= bounds.output_lower_per_server,
            "{} case {case}: max emitted {max_emitted} below m/p = {}",
            q.name(),
            bounds.output_lower_per_server
        );
        checked += 1;
    }
    assert!(checked >= 100, "the suite must cover at least 100 cases, got {checked}");
}

#[test]
fn journal_worked_examples_pin_closed_forms() {
    // Cycles: τ* = ρ* = k/2 and the emission bound is (m/p)^(2/k).
    for k in [3usize, 4, 6] {
        let a = QueryAnalysis::analyze(&families::cycle(k)).unwrap();
        assert_eq!(a.tau_star, Rational::new(k as i128, 2), "C{k}");
        assert_eq!(a.rho_star, Rational::new(k as i128, 2), "C{k}");
        let b = a.output_bounds(1 << 10, 1 << 10, 1 << 4).unwrap();
        // (2^10 / 2^4)^(2/k) = 2^(12/k) whenever k divides 12.
        if 12 % k == 0 {
            let expected = f64::from(1u32 << (12 / k as u32));
            assert!((b.lower_tuples - expected).abs() < 1e-9 * expected, "C{k}");
        }
    }
    // Stars: the matching-expectation bound degenerates to exactly m/p.
    for k in [2usize, 4] {
        let a = QueryAnalysis::analyze(&families::star(k)).unwrap();
        assert_eq!(a.rho_star, Rational::new(k as i128, 1), "T{k}");
        let b = a.output_bounds(500, 320, 16).unwrap();
        assert_eq!(b.matching_lower_tuples, 20.0, "T{k}");
    }
    // Chains: ρ* = ⌊k/2⌋ + 1 ≥ τ*, with equality exactly for odd k.
    for k in [2usize, 3, 4, 5, 6] {
        let a = QueryAnalysis::analyze(&families::chain(k)).unwrap();
        assert_eq!(a.rho_star, Rational::new((k / 2 + 1) as i128, 1), "L{k}");
        if k % 2 == 1 {
            assert_eq!(a.rho_star, a.tau_star, "L{k}");
        } else {
            assert!(a.rho_star > a.tau_star, "L{k}");
        }
    }
}

#[test]
fn multiround_predictions_bracket_simulated_loads() {
    // The refined multi-round analysis on matching chains: per-round
    // predictions must agree with the simulator within hash slack.
    let mut rng = StdRng::seed_from_u64(CASE_SEED ^ 0xFF);
    for _ in 0..6 {
        let k = [4usize, 6, 8][rng.gen_range(0usize..3)];
        let q = families::chain(k);
        let n = rng.gen_range(400u64..=1200);
        let db = matching_database(&q, n, rng.gen());
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        let profile = plan.predict_loads(8, n).unwrap();
        let outcome = MultiRound::run_plan(&plan, &db, 8, rng.gen()).unwrap();
        for cmp in profile.compare(&outcome.result).unwrap() {
            assert!(
                cmp.ratio <= SLACK && cmp.ratio >= 1.0 / SLACK,
                "L{k} n={n} round {}: predicted {} vs simulated {}",
                cmp.round,
                cmp.predicted_tuples,
                cmp.simulated_max_tuples
            );
        }
    }
}

#[test]
fn planted_databases_also_satisfy_bounds_under_partial_output() {
    // Same query, sweeping m on one database family: the emission bound
    // is monotone in m and never crosses the simulated load.
    let q = families::triangle();
    let n = 200u64;
    let p = 27usize;
    let analysis = QueryAnalysis::analyze(&q).unwrap();
    let mut last_lower = 0.0f64;
    for m in [0u64, 1, 20, 100, 200] {
        let planted = output_controlled_database(&q, n, m, 9 + m);
        let bounds = analysis.output_bounds(n, m, p).unwrap();
        assert!(bounds.lower_tuples >= last_lower, "monotone in m");
        last_lower = bounds.lower_tuples;
        let run = HyperCube::run(&q, &planted.db, &MpcConfig::new(p, 1.0 / 3.0)).unwrap();
        assert_eq!(run.result.output.len() as u64, m);
        let verdict =
            bounds.bracket(&q, &run.allocation, run.result.max_load_tuples(), SLACK).unwrap();
        assert!(verdict.ok(), "m = {m}: {verdict:?}");
    }
}
