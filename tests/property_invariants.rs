//! Property-based tests of the theory-level invariants, over randomly
//! generated connected binary conjunctive queries and random matching
//! databases.
//!
//! Query generator: `k` variables are connected by a random spanning path
//! (guaranteeing connectivity), then a few random extra binary atoms are
//! added. All relation symbols are distinct, so the queries are valid full
//! CQs without self-joins.

use proptest::prelude::*;

use mpc_query::core::multiround::lower_bound::round_lower_bound;
use mpc_query::core::multiround::planner::round_upper_bound;
use mpc_query::prelude::*;
use mpc_query::storage::join::evaluate;

/// A description of a random connected binary query.
#[derive(Debug, Clone)]
struct RandomQuery {
    num_vars: usize,
    extra_edges: Vec<(usize, usize)>,
}

impl RandomQuery {
    fn build(&self) -> Query {
        let var = |i: usize| format!("x{i}");
        let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
        // Spanning path keeps the query connected.
        for i in 1..self.num_vars {
            atoms.push((format!("P{i}"), vec![var(i - 1), var(i)]));
        }
        for (idx, &(a, b)) in self.extra_edges.iter().enumerate() {
            let (a, b) = (a % self.num_vars, b % self.num_vars);
            if a == b {
                continue;
            }
            atoms.push((format!("E{idx}"), vec![var(a), var(b)]));
        }
        if atoms.is_empty() {
            atoms.push(("P1".to_string(), vec![var(0), var(0)]));
        }
        Query::new("RQ".to_string(), atoms).expect("generated queries are valid")
    }
}

fn random_query() -> impl Strategy<Value = RandomQuery> {
    (2usize..6, prop::collection::vec((0usize..6, 0usize..6), 0..4))
        .prop_map(|(num_vars, extra_edges)| RandomQuery { num_vars, extra_edges })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// χ(q) ≤ 0 and the answer-size exponent k + ℓ − a equals c + χ
    /// (Lemma 2.1(c) and Lemma 3.4).
    #[test]
    fn characteristic_invariants(rq in random_query()) {
        let q = rq.build();
        prop_assert!(q.characteristic() <= 0);
        let exponent = q.num_vars() as i64 + q.num_atoms() as i64 - q.total_arity() as i64;
        prop_assert_eq!(exponent, q.num_connected_components() as i64 + q.characteristic());
    }

    /// LP duality: the optimal vertex cover and edge packing have equal
    /// value; the returned solutions are feasible; τ* ≥ 1 and the space
    /// exponent lies in [0, 1).
    #[test]
    fn lp_duality_and_space_exponent(rq in random_query()) {
        let q = rq.build();
        let lps = mpc_query::lp::QueryLps::solve(&q).unwrap();
        prop_assert_eq!(lps.vertex_cover().total(), lps.edge_packing().total());
        prop_assert!(lps.vertex_cover().is_valid_for(&q));
        prop_assert!(lps.edge_packing().is_valid_for(&q));
        prop_assert!(lps.covering_number() >= Rational::ONE);
        let eps = space_exponent(&q).unwrap();
        prop_assert!(!eps.is_negative());
        prop_assert!(eps < Rational::ONE);
    }

    /// Integer shares multiply to at most p, are at least 1 each, and the
    /// share exponents sum to one.
    #[test]
    fn share_allocation_invariants(rq in random_query(), p in 1usize..200) {
        let q = rq.build();
        let alloc = ShareAllocation::optimal(&q, p).unwrap();
        prop_assert!(alloc.num_cells() <= p);
        prop_assert!(alloc.shares.iter().all(|&s| s >= 1));
        prop_assert_eq!(Rational::sum(alloc.exponents.iter()).unwrap(), Rational::ONE);
    }

    /// Radius/diameter relations for connected queries.
    #[test]
    fn radius_diameter_relation(rq in random_query()) {
        let q = rq.build();
        if q.is_connected() {
            let rad = q.radius().unwrap();
            let diam = q.diameter().unwrap();
            prop_assert!(rad <= diam);
            prop_assert!(diam <= 2 * rad);
        }
    }

    /// The HyperCube shuffle is exact: on a random matching database it
    /// reports exactly the answers of the sequential join, for every seed
    /// and server count.
    #[test]
    fn hypercube_is_exact(rq in random_query(), p in 2usize..40, seed in 0u64..1000) {
        let q = rq.build();
        let db = matching_database(&q, 60, seed);
        let eps = space_exponent(&q).unwrap().to_f64();
        let run = HyperCube::run_seeded(&q, &db, &MpcConfig::new(p, eps), seed).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        prop_assert!(run.result.output.same_tuples(&truth));
    }

    /// Multi-round plans are valid, their execution is exact, and the
    /// round lower bound never exceeds the plan depth.
    #[test]
    fn multiround_plans_are_exact(rq in random_query(), seed in 0u64..1000) {
        let q = rq.build();
        if !q.is_connected() || q.num_atoms() > 8 {
            return Ok(());
        }
        let eps = Rational::ZERO;
        let plan = MultiRoundPlan::build(&q, eps).unwrap();
        plan.validate().unwrap();
        let lower = round_lower_bound(&q, eps).unwrap();
        prop_assert!(lower <= plan.num_rounds());
        let upper = round_upper_bound(&q, eps).unwrap();
        prop_assert!(lower <= upper);

        let db = matching_database(&q, 40, seed);
        let outcome = MultiRound::run(&q, &db, 8, eps, seed).unwrap();
        let truth = evaluate(&q, &db).unwrap();
        prop_assert!(outcome.result.output.same_tuples(&truth));
    }

    /// Lemma 3.4 sanity: over random matching databases the answer count
    /// of tree-like connected queries is exactly n, and never exceeds n
    /// for any connected query.
    #[test]
    fn matching_answer_counts(rq in random_query(), seed in 0u64..500) {
        let q = rq.build();
        if !q.is_connected() {
            return Ok(());
        }
        let n = 50u64;
        let db = matching_database(&q, n, seed);
        let out = evaluate(&q, &db).unwrap();
        prop_assert!(out.len() as u64 <= n);
        if q.is_tree_like() {
            prop_assert_eq!(out.len() as u64, n);
        }
    }
}
