//! Property-based tests of the theory-level invariants, over randomly
//! generated connected binary conjunctive queries and random matching
//! databases.
//!
//! Query generator: `k` variables are connected by a random spanning path
//! (guaranteeing connectivity), then a few random extra binary atoms are
//! added. All relation symbols are distinct, so the queries are valid full
//! CQs without self-joins.
//!
//! The case generator is a seeded [`StdRng`] loop (the build environment
//! cannot fetch `proptest`), so every run exercises the same deterministic
//! case set; bump `CASES` or vary `CASE_SEED` to widen the search.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_query::core::multiround::lower_bound::round_lower_bound;
use mpc_query::core::multiround::planner::round_upper_bound;
use mpc_query::prelude::*;
use mpc_query::storage::join::evaluate;

/// Number of random queries each property is checked against.
const CASES: usize = 48;

/// Master seed of the deterministic case generator.
const CASE_SEED: u64 = 0xBEA3E;

/// A description of a random connected binary query.
#[derive(Debug, Clone)]
struct RandomQuery {
    num_vars: usize,
    extra_edges: Vec<(usize, usize)>,
}

impl RandomQuery {
    fn generate(rng: &mut StdRng) -> Self {
        let num_vars = rng.gen_range(2usize..6);
        let num_extra = rng.gen_range(0usize..4);
        let extra_edges =
            (0..num_extra).map(|_| (rng.gen_range(0usize..6), rng.gen_range(0usize..6))).collect();
        RandomQuery { num_vars, extra_edges }
    }

    fn build(&self) -> Query {
        let var = |i: usize| format!("x{i}");
        let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
        // Spanning path keeps the query connected.
        for i in 1..self.num_vars {
            atoms.push((format!("P{i}"), vec![var(i - 1), var(i)]));
        }
        for (idx, &(a, b)) in self.extra_edges.iter().enumerate() {
            let (a, b) = (a % self.num_vars, b % self.num_vars);
            if a == b {
                continue;
            }
            atoms.push((format!("E{idx}"), vec![var(a), var(b)]));
        }
        if atoms.is_empty() {
            atoms.push(("P1".to_string(), vec![var(0), var(0)]));
        }
        Query::new("RQ".to_string(), atoms).expect("generated queries are valid")
    }
}

/// Run `check` against `CASES` deterministic random queries, reporting the
/// failing query on panic.
fn for_random_queries(property: &str, mut check: impl FnMut(&mut StdRng, &Query)) {
    let mut rng = StdRng::seed_from_u64(CASE_SEED);
    for case in 0..CASES {
        let rq = RandomQuery::generate(&mut rng);
        let q = rq.build();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check(&mut rng, &q);
        }));
        if let Err(panic) = result {
            eprintln!("property `{property}` failed on case {case}: {rq:?}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// χ(q) ≤ 0 and the answer-size exponent k + ℓ − a equals c + χ
/// (Lemma 2.1(c) and Lemma 3.4).
#[test]
fn characteristic_invariants() {
    for_random_queries("characteristic_invariants", |_, q| {
        assert!(q.characteristic() <= 0);
        let exponent = q.num_vars() as i64 + q.num_atoms() as i64 - q.total_arity() as i64;
        assert_eq!(exponent, q.num_connected_components() as i64 + q.characteristic());
    });
}

/// LP duality: the optimal vertex cover and edge packing have equal
/// value; the returned solutions are feasible; τ* ≥ 1 and the space
/// exponent lies in [0, 1).
#[test]
fn lp_duality_and_space_exponent() {
    for_random_queries("lp_duality_and_space_exponent", |_, q| {
        let lps = mpc_query::lp::QueryLps::solve(q).unwrap();
        assert_eq!(lps.vertex_cover().total(), lps.edge_packing().total());
        assert!(lps.vertex_cover().is_valid_for(q));
        assert!(lps.edge_packing().is_valid_for(q));
        assert!(lps.covering_number() >= Rational::ONE);
        let eps = space_exponent(q).unwrap();
        assert!(!eps.is_negative());
        assert!(eps < Rational::ONE);
    });
}

/// Integer shares multiply to at most p, are at least 1 each, and the
/// share exponents sum to one.
#[test]
fn share_allocation_invariants() {
    for_random_queries("share_allocation_invariants", |rng, q| {
        let p = rng.gen_range(1usize..200);
        let alloc = ShareAllocation::optimal(q, p).unwrap();
        assert!(alloc.num_cells() <= p);
        assert!(alloc.shares.iter().all(|&s| s >= 1));
        assert_eq!(Rational::sum(alloc.exponents.iter()).unwrap(), Rational::ONE);
    });
}

/// Radius/diameter relations for connected queries.
#[test]
fn radius_diameter_relation() {
    for_random_queries("radius_diameter_relation", |_, q| {
        if q.is_connected() {
            let rad = q.radius().unwrap();
            let diam = q.diameter().unwrap();
            assert!(rad <= diam);
            assert!(diam <= 2 * rad);
        }
    });
}

/// The HyperCube shuffle is exact: on a random matching database it
/// reports exactly the answers of the sequential join, for every seed
/// and server count.
#[test]
fn hypercube_is_exact() {
    for_random_queries("hypercube_is_exact", |rng, q| {
        let p = rng.gen_range(2usize..40);
        let seed = rng.gen_range(0u64..1000);
        let db = matching_database(q, 60, seed);
        let eps = space_exponent(q).unwrap().to_f64();
        let run = HyperCube::run_seeded(q, &db, &MpcConfig::new(p, eps), seed).unwrap();
        let truth = evaluate(q, &db).unwrap();
        assert!(run.result.output.same_tuples(&truth));
    });
}

/// Multi-round plans are valid, their execution is exact, and the
/// round lower bound never exceeds the plan depth.
#[test]
fn multiround_plans_are_exact() {
    for_random_queries("multiround_plans_are_exact", |rng, q| {
        let seed = rng.gen_range(0u64..1000);
        if !q.is_connected() || q.num_atoms() > 8 {
            return;
        }
        let eps = Rational::ZERO;
        let plan = MultiRoundPlan::build(q, eps).unwrap();
        plan.validate().unwrap();
        let lower = round_lower_bound(q, eps).unwrap();
        assert!(lower <= plan.num_rounds());
        let upper = round_upper_bound(q, eps).unwrap();
        assert!(lower <= upper);

        let db = matching_database(q, 40, seed);
        let outcome = MultiRound::run(q, &db, 8, eps, seed).unwrap();
        let truth = evaluate(q, &db).unwrap();
        assert!(outcome.result.output.same_tuples(&truth));
    });
}

/// Lemma 3.4 sanity: over random matching databases the answer count
/// of tree-like connected queries is exactly n, and never exceeds n
/// for any connected query.
#[test]
fn matching_answer_counts() {
    for_random_queries("matching_answer_counts", |rng, q| {
        let seed = rng.gen_range(0u64..500);
        if !q.is_connected() {
            return;
        }
        let n = 50u64;
        let db = matching_database(q, n, seed);
        let out = evaluate(q, &db).unwrap();
        assert!(out.len() as u64 <= n);
        if q.is_tree_like() {
            assert_eq!(out.len() as u64, n);
        }
    });
}
