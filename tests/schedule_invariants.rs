//! Property tests of the virtual-clock schedule model: a seeded case loop
//! (the style of `tests/property_invariants.rs`) over random queries,
//! server counts, cost models, window sizes and straggler draws,
//! asserting on every run that
//!
//! 1. `makespan ≥ critical_path` — backpressure can only delay, never
//!    accelerate, the pure data-dependency schedule;
//! 2. each server's busy + blocked + idle spans exactly partition its
//!    timeline `[0, finish]`;
//! 3. the schedule covers exactly the synchronous run's rounds, and with
//!    zero-latency (and any other) cost models the async backend's round
//!    count matches the synchronous backend's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_query::core::hypercube::HyperCubeProgram;
use mpc_query::cq::families;
use mpc_query::prelude::*;
use mpc_query::sim::schedule::{simulate, simulate_overlapped, MsgRecord};
use mpc_query::sim::{AsyncConfig, CostModel, ScheduleStats, StragglerSpec};

fn check_invariants(label: &str, stats: &ScheduleStats, sync_rounds: usize) {
    assert!(
        stats.makespan >= stats.critical_path,
        "{label}: makespan {} below critical path {}",
        stats.makespan,
        stats.critical_path
    );
    for s in &stats.servers {
        assert!(
            s.span_partition_holds(),
            "{label}: server {}: busy {} + blocked {} + idle {} != finish {}",
            s.server,
            s.busy,
            s.blocked,
            s.idle,
            s.finish
        );
        assert_eq!(
            s.round_finish.len(),
            sync_rounds,
            "{label}: server {} round timeline length",
            s.server
        );
        // Round finishes are non-decreasing and end at the server's
        // finish time.
        for w in s.round_finish.windows(2) {
            assert!(w[0] <= w[1], "{label}: round finishes must be monotone");
        }
        assert_eq!(s.round_finish.last().copied().unwrap_or(0), s.finish);
    }
    assert_eq!(stats.num_rounds(), sync_rounds, "{label}: schedule round count");
    let eff = stats.schedule_efficiency();
    assert!((0.0..=1.0).contains(&eff), "{label}: efficiency {eff} out of range");
}

#[test]
fn seeded_schedule_property_loop() {
    let mut rng = StdRng::seed_from_u64(0xA57C);
    for case in 0..24 {
        // A random query family instance, sized to stay fast.
        let q = match rng.gen_range(0..4usize) {
            0 => families::chain(rng.gen_range(2..5)),
            1 => families::cycle(rng.gen_range(3..5)),
            2 => families::star(rng.gen_range(2..4)),
            _ => families::triangle(),
        };
        let n = rng.gen_range(100..400u64);
        let p = [4usize, 8, 9, 16][rng.gen_range(0..4usize)];
        let db = matching_database(&q, n, rng.gen());
        let program = match HyperCubeProgram::new(&q, p, rng.gen()) {
            Ok(program) => program,
            Err(e) => panic!("case {case}: allocation failed for {}: {e}", q.name()),
        };
        let cfg = MpcConfig::new(p, 1.0);
        let cluster = Cluster::new(cfg).unwrap();
        let sync_rounds = cluster.run(&program, &db).unwrap().num_rounds();

        let cost = match rng.gen_range(0..3usize) {
            0 => CostModel::default(),
            1 => CostModel::zero_latency(),
            _ => CostModel {
                link_latency: rng.gen_range(0..16),
                send_ticks_per_byte: rng.gen_range(0..4),
                recv_ticks_per_byte: rng.gen_range(0..4),
                compute_ticks_per_tuple: rng.gen_range(0..16),
                round_overhead: rng.gen_range(0..64),
            },
        };
        let mut async_cfg =
            AsyncConfig::new().with_queue_capacity(1 << rng.gen_range(0..7usize)).with_cost(cost);
        if rng.gen_bool(0.5) {
            async_cfg = async_cfg.with_straggler(StragglerSpec::new(
                rng.gen(),
                rng.gen_range(0..3),
                rng.gen_range(1..10),
            ));
        }

        let label = format!("case {case} ({}, p = {p})", q.name());
        let run = cluster.run_async(&program, &db, &async_cfg).unwrap();
        check_invariants(&label, &run.schedule, sync_rounds);
    }
}

#[test]
fn zero_latency_matches_synchronous_round_count_on_multi_round_plans() {
    use mpc_query::core::multiround::executor::PlanProgram;

    for (q, p) in [(families::chain(4), 16usize), (families::chain(8), 8), (families::cycle(6), 8)]
    {
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        let program = PlanProgram::new(&plan, p, 3).unwrap();
        let db = matching_database(&q, 400, 7);
        let cluster = Cluster::new(MpcConfig::new(p, 0.0)).unwrap();
        let sync = cluster.run(&program, &db).unwrap();
        let run = cluster
            .run_async(&program, &db, &AsyncConfig::new().with_cost(CostModel::zero_latency()))
            .unwrap();
        assert_eq!(run.result.num_rounds(), sync.num_rounds());
        check_invariants(&format!("zero-latency {}", q.name()), &run.schedule, sync.num_rounds());
    }
}

/// Random protocol-valid traffic: round 1 from input actors (ids ≥ p),
/// later rounds from workers, seqs monotone per sender and round.
fn random_traffic(rng: &mut StdRng, p: usize, rounds: usize) -> Vec<MsgRecord> {
    let mut traffic = Vec::new();
    let inputs = rng.gen_range(1..4usize);
    for round in 1..=rounds {
        let senders: Vec<usize> =
            if round == 1 { (p..p + inputs).collect() } else { (0..p).collect() };
        for from in senders {
            for seq in 0..rng.gen_range(0..12u64) {
                traffic.push(MsgRecord {
                    round,
                    from,
                    to: rng.gen_range(0..p),
                    seq,
                    bytes: rng.gen_range(8..2048u64),
                    tuples: rng.gen_range(1..32u64),
                });
            }
        }
    }
    traffic
}

/// The double-buffered replay at depth 0 *is* the strict round-synchronous
/// schedule — field-for-field — and at every depth the makespan stays at
/// or above the critical path while each server's spans partition its
/// timeline. Completing at all also certifies the per-link FIFO: the
/// event loop asserts on every ingest that overlap never reorders a link.
#[test]
fn pipelined_replay_properties_on_random_traffic() {
    let mut rng = StdRng::seed_from_u64(0x0E71A9);
    for case in 0..60 {
        let p = rng.gen_range(2..9usize);
        let rounds = rng.gen_range(1..5usize);
        let traffic = random_traffic(&mut rng, p, rounds);
        let window = 1usize << rng.gen_range(0..7usize);
        let cost = CostModel {
            link_latency: rng.gen_range(0..32),
            send_ticks_per_byte: rng.gen_range(0..4),
            recv_ticks_per_byte: rng.gen_range(0..4),
            compute_ticks_per_tuple: rng.gen_range(0..8),
            round_overhead: rng.gen_range(0..64),
        };
        let slowdown: Vec<u64> = (0..p).map(|_| rng.gen_range(1..4u64)).collect();

        let strict = simulate(p, rounds, &traffic, &cost, &slowdown, window);
        for depth in 0..4usize {
            let piped = simulate_overlapped(p, rounds, &traffic, &cost, &slowdown, window, depth);
            let label = format!("case {case} depth {depth} (p = {p}, rounds = {rounds})");
            assert_eq!(piped.pipeline_depth, depth, "{label}: depth echo");
            assert!(
                piped.makespan >= piped.critical_path,
                "{label}: makespan {} below critical path {}",
                piped.makespan,
                piped.critical_path
            );
            for s in &piped.servers {
                assert!(s.span_partition_holds(), "{label}: server {} leaks", s.server);
            }
            if depth == 0 {
                assert_eq!(piped, strict, "{label}: zero overlap must be the strict schedule");
            }
        }
    }
}

/// On real runs, the pipeline depth shapes only the schedule: outputs and
/// per-round volumes are depth-independent, and the replay itself is
/// deterministic (same run, same schedule, regardless of how the worker
/// threads actually interleaved).
#[test]
fn pipeline_depth_changes_schedules_never_semantics() {
    let q = families::triangle();
    let db = matching_database(&q, 600, 5);
    let program = HyperCubeProgram::new(&q, 8, 11).unwrap();
    let cluster = Cluster::new(MpcConfig::new(8, 1.0 / 3.0)).unwrap();

    let runs: Vec<_> = (0..3usize)
        .map(|depth| {
            cluster
                .run_async(&program, &db, &AsyncConfig::new().with_pipeline_depth(depth))
                .unwrap()
        })
        .collect();
    for (depth, run) in runs.iter().enumerate() {
        assert_eq!(run.schedule.pipeline_depth, depth);
        assert!(run.result.output.same_tuples(&runs[0].result.output));
        assert_eq!(run.result.rounds, runs[0].result.rounds, "depth {depth} changed volumes");
        check_invariants(
            &format!("real depth {depth}"),
            &run.schedule,
            runs[0].result.num_rounds(),
        );
    }
    // Replay determinism across thread interleavings: a repeated depth-0
    // run reproduces the depth-0 schedule tick for tick.
    let again =
        cluster.run_async(&program, &db, &AsyncConfig::new().with_pipeline_depth(0)).unwrap();
    assert_eq!(again.schedule, runs[0].schedule, "depth-0 schedule must be reproducible");
}

#[test]
fn barrier_wait_reflects_injected_stragglers() {
    // One straggler, heavy slowdown: the per-round spread must grow
    // relative to the uninjected schedule.
    let q = families::triangle();
    let db = matching_database(&q, 800, 3);
    let program = HyperCubeProgram::new(&q, 27, 1).unwrap();
    let cluster = Cluster::new(MpcConfig::new(27, 1.0 / 3.0)).unwrap();
    let plain = cluster.run_async(&program, &db, &AsyncConfig::new()).unwrap();
    let slowed = cluster
        .run_async(&program, &db, &AsyncConfig::new().with_straggler(StragglerSpec::new(5, 1, 16)))
        .unwrap();
    assert!(slowed.schedule.max_barrier_wait() > plain.schedule.max_barrier_wait());
    // The straggler is the last server to finish.
    let straggler = slowed.schedule.stragglers[0];
    let finish =
        |s: &ScheduleStats| s.servers.iter().max_by_key(|t| t.finish).map(|t| t.server).unwrap();
    assert_eq!(finish(&slowed.schedule), straggler);
}
