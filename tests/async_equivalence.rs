//! Differential equivalence of the two `mpc-sim` backends: for every kind
//! of program this workspace ships — one-round HyperCube, multi-round
//! plans, skew-resilient residual routing, broadcast baseline — the
//! event-driven backend must produce **identical join outputs and
//! identical per-round communication volumes** to the round-synchronous
//! reference. The async path can change *schedules*, never semantics.

use mpc_query::core::hypercube::HyperCubeProgram;
use mpc_query::core::multiround::executor::PlanProgram;
use mpc_query::cq::families;
use mpc_query::data::skew::{heavy_hitter_database, zipf_database};
use mpc_query::prelude::*;
use mpc_query::sim::{run_differential, AsyncConfig, CostModel, MpcProgram, StragglerSpec};
use mpc_query::skew::SkewResilientProgram;
use mpc_query::storage::join::evaluate;

fn assert_equivalent<P: MpcProgram>(
    label: &str,
    program: &P,
    db: &Database,
    cfg: &MpcConfig,
    async_cfg: &AsyncConfig,
) {
    let cluster = Cluster::new(cfg.clone()).expect("valid config");
    let report = run_differential(&cluster, program, db, async_cfg)
        .unwrap_or_else(|e| panic!("{label}: differential run failed: {e}"));
    assert_eq!(report.divergence(), None, "{label}: backends diverged");
    // The schedule invariants hold on every equivalent run, too.
    let sched = &report.event_driven.schedule;
    assert!(sched.makespan >= sched.critical_path, "{label}: makespan below critical path");
    for s in &sched.servers {
        assert!(s.span_partition_holds(), "{label}: server {} timeline leaks", s.server);
    }
    // The columnar data plane leaks no blocks on a clean run.
    let pool = &report.event_driven.pool;
    assert!(pool.balanced(), "{label}: block pool unbalanced: {pool:?}");
}

#[test]
fn hypercube_triangle_is_backend_independent() {
    let q = families::triangle();
    let db = matching_database(&q, 1500, 11);
    let program = HyperCubeProgram::new(&q, 64, 42).unwrap();
    let cfg = MpcConfig::new(64, 1.0 / 3.0);
    assert_equivalent("HC triangle", &program, &db, &cfg, &AsyncConfig::new());

    // And the async output is the true join.
    let cluster = Cluster::new(cfg).unwrap();
    let run = cluster.run_async(&program, &db, &AsyncConfig::new()).unwrap();
    let truth = evaluate(&q, &db).unwrap();
    assert!(run.result.output.same_tuples(&truth));
}

#[test]
fn hypercube_across_queries_and_capacities() {
    for q in [families::chain(2), families::star(3), families::cycle(4)] {
        let db = matching_database(&q, 400, 17);
        let program = HyperCubeProgram::new(&q, 16, 7).unwrap();
        let cfg = MpcConfig::new(16, 0.5);
        for capacity in [1, 4, 256] {
            assert_equivalent(
                &format!("HC {} cap={capacity}", q.name()),
                &program,
                &db,
                &cfg,
                &AsyncConfig::new().with_queue_capacity(capacity),
            );
        }
    }
}

#[test]
fn multi_round_plans_are_backend_independent() {
    // L4 at ε = 0 (2 rounds), L8 at ε = 0 (3 rounds), C6 (3 rounds).
    for (q, n) in
        [(families::chain(4), 800u64), (families::chain(8), 300), (families::cycle(6), 300)]
    {
        let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
        let program = PlanProgram::new(&plan, 8, 5).unwrap();
        let db = matching_database(&q, n, 3);
        let cfg = MpcConfig::new(8, 0.0);
        assert_equivalent(&format!("plan {}", q.name()), &program, &db, &cfg, &AsyncConfig::new());
    }
}

#[test]
fn skew_resilient_program_is_backend_independent() {
    let q = families::chain(2);
    let cfg = MpcConfig::new(32, 0.0);
    for (label, db) in [
        ("zipf 1.2", zipf_database(&q, 2000, 2000, 1.2, 5)),
        ("heavy 50%", heavy_hitter_database(&q, 1500, 1500, 0.5, 7)),
    ] {
        let program =
            SkewResilientProgram::new(&q, &db, 32, &HeavyHitterPolicy::default(), 42).unwrap();
        assert_equivalent(&format!("skew {label}"), &program, &db, &cfg, &AsyncConfig::new());
    }
}

/// The differential matrix of the columnar data plane: every program kind
/// × block capacities spanning per-tuple (1), awkward (7), steady-state
/// (64) and whole-round (4096) blocks × tight and roomy queues. Identical
/// outputs and per-round volumes everywhere — block capacity 1 must
/// degenerate to the old per-tuple plane exactly.
#[test]
fn differential_matrix_over_block_and_queue_capacities() {
    let hc_q = families::triangle();
    let hc_db = matching_database(&hc_q, 400, 11);
    let hc = HyperCubeProgram::new(&hc_q, 8, 42).unwrap();
    let hc_cfg = MpcConfig::new(8, 1.0 / 3.0);

    let mr_q = families::chain(4);
    let plan = MultiRoundPlan::build(&mr_q, Rational::ZERO).unwrap();
    let mr = PlanProgram::new(&plan, 8, 5).unwrap();
    let mr_db = matching_database(&mr_q, 400, 3);
    let mr_cfg = MpcConfig::new(8, 0.0);

    let sk_q = families::chain(2);
    let sk_db = zipf_database(&sk_q, 800, 800, 1.2, 5);
    let sk =
        SkewResilientProgram::new(&sk_q, &sk_db, 8, &HeavyHitterPolicy::default(), 42).unwrap();
    let sk_cfg = MpcConfig::new(8, 0.0);

    for block in [1usize, 7, 64, 4096] {
        for queue in [2usize, 64] {
            let async_cfg =
                AsyncConfig::new().with_block_capacity(block).with_queue_capacity(queue);
            assert_equivalent(
                &format!("matrix HC block={block} queue={queue}"),
                &hc,
                &hc_db,
                &hc_cfg,
                &async_cfg,
            );
            assert_equivalent(
                &format!("matrix plan block={block} queue={queue}"),
                &mr,
                &mr_db,
                &mr_cfg,
                &async_cfg,
            );
            assert_equivalent(
                &format!("matrix skew block={block} queue={queue}"),
                &sk,
                &sk_db,
                &sk_cfg,
                &async_cfg,
            );
        }
    }
}

/// Per-link adaptive block capacity is a *scheduling* knob: when a lane
/// sits mostly empty the assembler seals smaller blocks to cut latency,
/// but outputs and per-round volumes must stay bit-identical to both the
/// synchronous backend and the fixed-capacity async plane. Aggressive
/// watermarks maximise the number of capacity transitions exercised.
#[test]
fn adaptive_block_capacity_never_changes_outputs() {
    use mpc_query::sim::AdaptivePolicy;

    let hc_q = families::triangle();
    let hc_db = matching_database(&hc_q, 600, 11);
    let hc = HyperCubeProgram::new(&hc_q, 8, 42).unwrap();
    let hc_cfg = MpcConfig::new(8, 1.0 / 3.0);

    let mr_q = families::chain(4);
    let plan = MultiRoundPlan::build(&mr_q, Rational::ZERO).unwrap();
    let mr = PlanProgram::new(&plan, 8, 5).unwrap();
    let mr_db = matching_database(&mr_q, 400, 3);
    let mr_cfg = MpcConfig::new(8, 0.0);

    for policy in [
        AdaptivePolicy::default(),
        AdaptivePolicy { min_capacity: 1, low_watermark: 0.9, high_watermark: 0.95 },
    ] {
        let async_cfg = AsyncConfig::new().with_adaptive_blocks(policy);
        assert_equivalent("adaptive HC", &hc, &hc_db, &hc_cfg, &async_cfg);
        assert_equivalent("adaptive plan", &mr, &mr_db, &mr_cfg, &async_cfg);
        // Against the fixed-capacity async plane, too: identical volumes.
        let cluster = Cluster::new(hc_cfg.clone()).unwrap();
        let fixed = cluster.run_async(&hc, &hc_db, &AsyncConfig::new()).unwrap();
        let adaptive = cluster.run_async(&hc, &hc_db, &async_cfg).unwrap();
        assert!(fixed.result.output.same_tuples(&adaptive.result.output));
        assert_eq!(fixed.result.rounds, adaptive.result.rounds);
    }
}

/// With block capacity 1 every block carries exactly one tuple, so the
/// pool's checkout count equals the total delivered tuple count — the
/// observable signature of the per-tuple degeneration.
#[test]
fn block_capacity_one_checks_out_one_block_per_tuple() {
    let q = families::triangle();
    let db = matching_database(&q, 500, 9);
    let program = HyperCubeProgram::new(&q, 8, 7).unwrap();
    let cluster = Cluster::new(MpcConfig::new(8, 1.0 / 3.0)).unwrap();
    let run = cluster.run_async(&program, &db, &AsyncConfig::new().with_block_capacity(1)).unwrap();
    let delivered: u64 = run.result.rounds.iter().map(|r| r.total_tuples_received).sum();
    assert_eq!(run.pool.checked_out, delivered, "one block per delivered tuple");
    assert!(run.pool.balanced());
}

#[test]
fn broadcast_baseline_is_backend_independent() {
    let q = families::triangle();
    let db = matching_database(&q, 300, 23);
    let program = mpc_query::sim::program::BroadcastProgram::new(q);
    assert_equivalent("broadcast", &program, &db, &MpcConfig::new(8, 1.0), &AsyncConfig::new());
}

#[test]
fn stragglers_change_the_schedule_but_not_the_result() {
    let q = families::triangle();
    let db = matching_database(&q, 1000, 9);
    let program = HyperCubeProgram::new(&q, 27, 3).unwrap();
    let cluster = Cluster::new(MpcConfig::new(27, 1.0 / 3.0)).unwrap();

    let plain = cluster.run_async(&program, &db, &AsyncConfig::new()).unwrap();
    let slowed = cluster
        .run_async(&program, &db, &AsyncConfig::new().with_straggler(StragglerSpec::new(1, 3, 12)))
        .unwrap();

    // Semantics and volumes: untouched.
    assert!(plain.result.output.same_tuples(&slowed.result.output));
    assert_eq!(plain.result.rounds, slowed.result.rounds);
    // Schedule: a straggler on the barrier inflates makespan and the
    // round spread.
    assert!(slowed.schedule.makespan > plain.schedule.makespan);
    assert!(slowed.schedule.max_barrier_wait() >= plain.schedule.max_barrier_wait());
    assert_eq!(slowed.schedule.stragglers, StragglerSpec::new(1, 3, 12).pick(27));
}

#[test]
fn cost_models_do_not_leak_into_volumes() {
    let q = families::chain(4);
    let plan = MultiRoundPlan::build(&q, Rational::ZERO).unwrap();
    let program = PlanProgram::new(&plan, 8, 1).unwrap();
    let db = matching_database(&q, 500, 13);
    let cluster = Cluster::new(MpcConfig::new(8, 0.0)).unwrap();

    let default = cluster.run_async(&program, &db, &AsyncConfig::new()).unwrap();
    let zero = cluster
        .run_async(&program, &db, &AsyncConfig::new().with_cost(CostModel::zero_latency()))
        .unwrap();
    let free =
        cluster.run_async(&program, &db, &AsyncConfig::new().with_cost(CostModel::free())).unwrap();

    assert_eq!(default.result.rounds, zero.result.rounds);
    assert_eq!(default.result.rounds, free.result.rounds);
    assert!(default.result.output.same_tuples(&zero.result.output));
    assert!(zero.schedule.makespan <= default.schedule.makespan);
    assert_eq!(free.schedule.makespan, 0);
}
