//! Integration tests of the skew-resilient HyperCube (`mpc-skew`): load
//! guarantees on skewed inputs where the vanilla HyperCube fails, output
//! equality against both the vanilla run and the sequential join, and the
//! heavy/light partition invariants of the residual-plan routing.
//!
//! The property loop at the bottom follows the seeded-StdRng style of
//! `tests/property_invariants.rs`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_query::cq::families;
use mpc_query::data::skew::{heavy_hitter_database, zipf_database};
use mpc_query::prelude::*;
use mpc_query::skew::{SkewResilient, SkewResilientProgram};
use mpc_query::storage::join::evaluate;

/// The headline guarantee: on the canonical heavy-hitter input the vanilla
/// HyperCube exceeds its `c · N / p^{1−ε}` budget while the resilient plan
/// stays within it — at identical output.
#[test]
fn resilient_within_budget_where_vanilla_fails() {
    let q = families::chain(2);
    let db = heavy_hitter_database(&q, 2000, 2000, 0.5, 7);
    let cfg = MpcConfig::new(32, 0.0);

    let vanilla = HyperCube::run(&q, &db, &cfg).expect("vanilla HC runs");
    let resilient = SkewResilient::run(&q, &db, &cfg).expect("resilient runs");

    assert!(
        !vanilla.result.within_budget(),
        "half of S2 shares one join key: one server must drown ({})",
        vanilla.result.summary()
    );
    assert!(
        resilient.result.within_budget(),
        "residual plans spread the heavy key ({})",
        resilient.result.summary()
    );
    assert!(resilient.result.output.same_tuples(&vanilla.result.output));

    // "Within a constant factor of the skew-free budget": the resilient
    // max load is not just under the (generous, c = 2) budget but within a
    // small factor of the perfectly balanced load N / p.
    let perfectly_balanced = db.total_bytes() / 32;
    assert!(
        resilient.result.max_load_bytes() <= 3 * perfectly_balanced,
        "max load {} vs perfectly balanced {}",
        resilient.result.max_load_bytes(),
        perfectly_balanced
    );
}

/// Same comparison on Zipf inputs: wherever vanilla fails, resilient must
/// hold; and resilient never turns a passing row into a failing one.
#[test]
fn resilient_never_regresses_on_zipf_inputs() {
    for (q, p, theta) in [
        (families::chain(2), 32, 0.8),
        (families::chain(2), 32, 1.2),
        (families::cycle(3), 27, 1.2),
    ] {
        let eps = space_exponent(&q).expect("LP solvable").to_f64();
        let db = zipf_database(&q, 3000, 3000, theta, 11);
        let cfg = MpcConfig::new(p, eps);
        let vanilla = HyperCube::run(&q, &db, &cfg).expect("vanilla HC runs");
        let resilient = SkewResilient::run(&q, &db, &cfg).expect("resilient runs");
        assert!(resilient.result.output.same_tuples(&vanilla.result.output));
        if !vanilla.result.within_budget() {
            assert!(
                resilient.result.within_budget(),
                "{} θ={theta}: vanilla over budget must be rescued ({})",
                q.name(),
                resilient.result.summary()
            );
        }
        assert!(
            resilient.result.max_load_bytes() <= vanilla.result.max_load_bytes(),
            "{} θ={theta}: the resilient plan never increases the worst load",
            q.name()
        );
    }
}

/// Output equality against the sequential join across query shapes and
/// skew profiles.
#[test]
fn output_equals_sequential_join() {
    let cases: Vec<(Query, Database)> = vec![
        (families::chain(2), zipf_database(&families::chain(2), 800, 1600, 1.5, 3)),
        (families::chain(3), zipf_database(&families::chain(3), 600, 1200, 1.0, 5)),
        (families::cycle(3), heavy_hitter_database(&families::cycle(3), 700, 700, 0.6, 9)),
        (families::star(2), heavy_hitter_database(&families::star(2), 500, 1000, 0.5, 13)),
    ];
    for (q, db) in cases {
        let eps = space_exponent(&q).expect("LP solvable").to_f64();
        let outcome =
            SkewResilient::run(&q, &db, &MpcConfig::new(16, eps)).expect("resilient runs");
        let truth = evaluate(&q, &db).expect("sequential join");
        assert!(
            outcome.result.output.same_tuples(&truth),
            "{}: resilient output must equal the direct join",
            q.name()
        );
    }
}

/// On skew-free matchings the detector finds nothing and the program
/// collapses to a single (vanilla-equivalent) plan.
#[test]
fn matching_inputs_collapse_to_one_plan() {
    for q in [families::chain(2), families::triangle()] {
        let db = matching_database(&q, 1000, 17);
        let eps = space_exponent(&q).expect("LP solvable").to_f64();
        let outcome =
            SkewResilient::run(&q, &db, &MpcConfig::new(16, eps)).expect("resilient runs");
        assert_eq!(outcome.num_plans(), 1, "{}", q.name());
        assert_eq!(outcome.num_heavy_values(), 0);
        assert!(outcome.result.within_budget());
        let truth = evaluate(&q, &db).expect("sequential join");
        assert!(outcome.result.output.same_tuples(&truth));
    }
}

/// The heavy/light partition invariant, as a seeded property loop:
///
/// 1. every tuple of every relation has exactly one heavy pattern, hence
///    exactly one *owning* residual plan (its pattern class);
/// 2. every tuple is routed to at least one server, and only to servers of
///    plans whose heavy set agrees with the tuple's pattern on the atom's
///    variables;
/// 3. the union of the per-plan outputs equals the direct join, and the
///    per-plan outputs are pairwise disjoint — every answer is produced by
///    exactly one server of exactly one plan.
#[test]
fn heavy_light_partition_invariant() {
    const CASES: usize = 12;
    let mut rng = StdRng::seed_from_u64(0x5C3A);
    for case in 0..CASES {
        let q = match case % 3 {
            0 => families::chain(2),
            1 => families::cycle(3),
            _ => families::star(2),
        };
        let n = rng.gen_range(300u64..900);
        let count = rng.gen_range(400usize..1200);
        let p = [8usize, 16, 27][case % 3];
        let db = if case % 2 == 0 {
            zipf_database(&q, n, count, 0.8 + rng.gen::<f64>(), rng.gen())
        } else {
            heavy_hitter_database(&q, n, count, 0.3 + 0.4 * rng.gen::<f64>(), rng.gen())
        };
        let program = SkewResilientProgram::new(&q, &db, p, &HeavyHitterPolicy::default(), 42)
            .expect("planning succeeds");
        let plans = program.plan_set();

        for rel in db.relations() {
            let (_, atom) = q.atom_by_name(rel.name()).expect("relation belongs to the query");
            let mut class_sizes = vec![0usize; plans.plans().len()];
            for t in rel.iter() {
                // (1) exactly one owning plan.
                let owner = program
                    .owning_plan(atom, t)
                    .expect("generated tuples have no repeated-variable conflicts");
                class_sizes[owner] += 1;

                // (2) routed somewhere, and only to pattern-compatible plans.
                let routed = program.routed_plans(atom, t);
                assert!(routed.contains(&owner), "case {case}: owner not among routed plans");
                let dests = program.destinations(atom, t);
                assert!(!dests.is_empty(), "case {case}: tuple dropped");
                for d in dests {
                    let plan = plans.plan_of_server(d).expect("destinations are live servers");
                    assert!(routed.contains(&plan), "case {case}: routed outside its plans");
                }
            }
            // The pattern classes partition the relation.
            assert_eq!(class_sizes.iter().sum::<usize>(), rel.len());
        }

        // (3) union of plan outputs = direct join, produced exactly once.
        let cluster = Cluster::new(MpcConfig::new(p, 1.0)).expect("valid config");
        let result = cluster.run(&program, &db).expect("execution succeeds");
        let truth = evaluate(&q, &db).expect("sequential join");
        assert!(
            result.output.same_tuples(&truth),
            "case {case}: sub-plan outputs must union to the direct join"
        );
        let produced: usize = result.per_server_output.iter().sum();
        assert_eq!(produced, result.output.len(), "case {case}: duplicate answers across plans");
    }
}
