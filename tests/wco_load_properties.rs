//! The WCO property wall: 48 seeded (random cyclic query, skewed
//! database) cases, each checked for
//!
//! * **exactness** — the distributed output equals the sequential join;
//! * **exact partition** — Σ per-server output counts == |output|: every
//!   answer is produced by exactly one cell of exactly one pattern grid,
//!   no duplicates across the heavy/light split and no losses;
//! * **load bracket** — the measured max per-round per-server load stays
//!   within a constant factor of the plan's prediction (the prediction is
//!   an expectation from exact tuple masses; the measurement exceeds it
//!   only by hash imbalance), and can never beat perfect balance
//!   (`max ≥ total/p`, the instance-level emission lower bound);
//! * **round floor** — the strategy's worst-case round count respects the
//!   multi-round lower bound of Theorem 4.5 (`verify_round_floor`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpc_query::core::wco::{WcoLoadPrediction, WcoProgram, WorstCaseOptimalPlan};
use mpc_query::data::skew::{degree_planted_database, zipf_database};
use mpc_query::prelude::*;
use mpc_query::storage::join::evaluate;

/// Multiplicative slack of the load bracket: measured ≤ SLACK · predicted
/// + 32. Hash imbalance over small cells motivates the additive floor.
const SLACK: f64 = 6.0;

/// A random cyclic query: a cycle of length 3–5 plus up to two random
/// chords (parallel chords are allowed — still a valid cyclic query).
fn random_cyclic_query(rng: &mut StdRng, case: usize) -> Query {
    let k = rng.gen_range(3usize..=5);
    let mut atoms: Vec<(String, Vec<String>)> = (1..=k)
        .map(|j| {
            let next = (j % k) + 1;
            (format!("S{j}"), vec![format!("x{j}"), format!("x{next}")])
        })
        .collect();
    for j in 0..rng.gen_range(0usize..=2) {
        let a = rng.gen_range(1usize..=k);
        let b = rng.gen_range(1usize..=k);
        if a != b {
            atoms.push((format!("C{j}"), vec![format!("x{a}"), format!("x{b}")]));
        }
    }
    Query::new(format!("rc{case}"), atoms).expect("valid cyclic query")
}

/// One database per flavour: Zipf (may or may not cross the heavy
/// threshold), a planted degree safely above it, and one safely below.
fn databases(q: &Query, rng: &mut StdRng) -> Vec<(String, Database)> {
    let tuples = rng.gen_range(150usize..=300);
    let n = 4 * tuples as u64;
    let theta = [0.8, 1.2, 1.6][rng.gen_range(0usize..3)];
    // Above: deg · 2 > tuples at every share ≥ 2. Below: deg · share ≤
    // tuples even at the maximal share p = 8.
    let above = tuples / 2 + tuples / 10;
    let below = tuples / 10;
    vec![
        (format!("zipf θ={theta}"), zipf_database(q, n, tuples, theta, rng.gen())),
        (format!("deg {above}"), degree_planted_database(q, n, tuples, 1, above, rng.gen())),
        (format!("deg {below}"), degree_planted_database(q, n, tuples, 1, below, rng.gen())),
    ]
}

#[test]
fn forty_eight_seeded_cases_hold_every_wco_property() {
    let mut rng = StdRng::seed_from_u64(0xBEA3_E2018);
    let mut cases = 0usize;
    let mut activated = 0usize;
    for case in 0..16 {
        let q = random_cyclic_query(&mut rng, case);
        let p = [8usize, 16][case % 2];
        for (flavour, db) in databases(&q, &mut rng) {
            let label = format!("case {case} ({}) on {flavour} p={p}", q.name());
            cases += 1;

            let plan = WorstCaseOptimalPlan::build(&q, &db, p)
                .unwrap_or_else(|e| panic!("{label}: plan: {e}"));
            plan.verify_round_floor().unwrap_or_else(|e| panic!("{label}: round floor: {e}"));
            if plan.num_rounds() == 2 {
                activated += 1;
            }
            let pred = WcoLoadPrediction::predict(&plan)
                .unwrap_or_else(|e| panic!("{label}: predict: {e}"));

            let program = WcoProgram::with_plan(plan, 0xC0FFEE ^ case as u64);
            let cluster = Cluster::new(MpcConfig::new(p, 0.9)).expect("valid config");
            let run = cluster.run(&program, &db).unwrap_or_else(|e| panic!("{label}: run: {e}"));

            // Exactness against the sequential join.
            let truth = evaluate(&q, &db).unwrap_or_else(|e| panic!("{label}: evaluate: {e}"));
            assert!(
                run.output.same_tuples(&truth),
                "{label}: {} distributed vs {} sequential tuples",
                run.output.len(),
                truth.len()
            );

            // Exact partition: no answer is formed twice across grids.
            let per_server: usize = run.per_server_output.iter().sum();
            assert_eq!(per_server, run.output.len(), "{label}: duplicate answers across servers");

            // Load bracket, round by round; and no round beats perfect
            // balance — the emission lower bound total/p.
            let rows = pred.compare(&run).unwrap_or_else(|e| panic!("{label}: compare: {e}"));
            for (row, stats) in rows.iter().zip(&run.rounds) {
                assert!(
                    row.simulated_max_tuples as f64 <= SLACK * row.predicted_tuples + 32.0,
                    "{label}: round {} measured {} escapes {SLACK} × {:.1} + 32",
                    row.round,
                    row.simulated_max_tuples,
                    row.predicted_tuples
                );
                let perfect = (stats.total_tuples_received as f64 / p as f64).floor();
                assert!(
                    stats.max_tuples_received as f64 >= perfect,
                    "{label}: round {} max {} below perfect balance {perfect}",
                    row.round,
                    stats.max_tuples_received
                );
            }
        }
    }
    assert_eq!(cases, 48, "the matrix is the advertised 48 cases");
    // The planted-above flavour must actually exercise the heavy path.
    assert!(activated >= 16, "only {activated} of {cases} cases activated the heavy side");
}
