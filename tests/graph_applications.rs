//! Integration tests for the graph applications (Theorem 4.10 and the
//! transitive-closure corollary) through the public facade crate.

use mpc_query::data::graphs::{dense_graph, LayeredGraph};
use mpc_query::graph::cc::{labels_from_output, rounds_to_convergence};
use mpc_query::graph::dense::run_dense_cc;
use mpc_query::graph::tc::{sequential_reachability, tc_rounds_to_completion};
use mpc_query::prelude::*;
use mpc_query::storage::join::evaluate;

/// The components of a layered path graph correspond one-to-one to the
/// answers of the chain query L_k — the reduction at the heart of
/// Theorem 4.10 — and both the chain query (via HyperCube plans) and the
/// CC program agree with the sequential ground truth.
#[test]
fn layered_graph_components_equal_chain_answers() {
    let g = LayeredGraph::generate(4, 32, 11);
    let (q, db) = g.to_chain_database();
    let chain_answers = evaluate(&q, &db).unwrap();
    assert_eq!(chain_answers.len() as u64, g.num_components());

    // The multi-round plan for L4 computes the same answers in 2 rounds.
    let outcome = MultiRound::run(&q, &db, 8, Rational::ZERO, 3).unwrap();
    assert!(outcome.result.output.same_tuples(&chain_answers));
    assert_eq!(outcome.result.num_rounds(), 2);

    // Label propagation labels the same components.
    let edges = g.edge_relation("E");
    let cc = rounds_to_convergence(&edges, g.num_vertices(), 8, 0.0, 20, 5).unwrap();
    assert!(cc.converged);
    let labels = labels_from_output(&cc.result.output);
    let distinct: std::collections::BTreeSet<_> = labels.values().collect();
    assert_eq!(distinct.len() as u64, g.num_components());
}

/// Deeper layered graphs force more label-propagation rounds while the
/// dense two-round algorithm stays at 2 (and blows the budget on the
/// sparse inputs) — the Theorem 4.10 dichotomy end to end.
#[test]
fn sparse_needs_more_rounds_than_dense() {
    let shallow = LayeredGraph::generate(2, 24, 3);
    let deep = LayeredGraph::generate(9, 24, 3);
    let p = 8;

    let shallow_cc =
        rounds_to_convergence(&shallow.edge_relation("E"), shallow.num_vertices(), p, 0.0, 40, 1)
            .unwrap();
    let deep_cc =
        rounds_to_convergence(&deep.edge_relation("E"), deep.num_vertices(), p, 0.0, 40, 1)
            .unwrap();
    assert!(shallow_cc.converged && deep_cc.converged);
    assert!(deep_cc.rounds > shallow_cc.rounds + 4);

    let dense_edges = dense_graph(deep.num_vertices(), 40, 9, "E");
    let dense = run_dense_cc(&dense_edges, deep.num_vertices(), p, 0.0, 2).unwrap();
    assert!(dense.correct);
    assert_eq!(dense.result.num_rounds(), 2);
    assert!(dense.within_budget);

    let dense_on_sparse =
        run_dense_cc(&deep.edge_relation("E"), deep.num_vertices(), p, 0.0, 2).unwrap();
    assert!(dense_on_sparse.correct);
    assert!(!dense_on_sparse.within_budget);
}

/// Path doubling computes the transitive closure in logarithmically many
/// rounds, exponentially fewer than the graph diameter, at the price of a
/// much larger shuffle volume.
#[test]
fn transitive_closure_round_communication_tradeoff() {
    // A directed path of 33 vertices (diameter 32).
    let edges = mpc_query::storage::Relation::from_tuples(
        "E",
        2,
        (1..33u64).map(|i| [i, i + 1]).collect::<Vec<_>>(),
    )
    .unwrap();
    let outcome = tc_rounds_to_completion(&edges, 33, 8, 0.5, 10, 4).unwrap();
    assert!(outcome.complete);
    assert!(outcome.rounds <= 7, "path doubling should need ~log2(32)+1 rounds");
    assert_eq!(outcome.result.output.len(), 32 * 33 / 2);
    assert_eq!(sequential_reachability(&edges).len(), 32 * 33 / 2);
    // The shuffle volume far exceeds the input size: rounds were bought
    // with communication.
    assert!(outcome.result.total_bytes() > edges.size_in_bytes() * 8);
}
