//! Quickstart: analyse the triangle query `C3`, shuffle it with the
//! HyperCube algorithm on a simulated MPC cluster, and compare the
//! communication cost against the naive baselines.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpc_query::core::baseline::BroadcastProgram;
use mpc_query::prelude::*;
use mpc_query::sim::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. The query and its structural analysis.
    // ------------------------------------------------------------------
    let q = families::triangle(); // C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1)
    let analysis = QueryAnalysis::analyze(&q)?;
    println!("query          : {}", analysis.query_text);
    println!("τ* (covering)  : {}", analysis.tau_star);
    println!("space exponent : {}  (ε* = 1 − 1/τ*)", analysis.space_exponent);
    println!(
        "share exponents: {:?}",
        analysis.share_exponents.iter().map(Rational::to_string).collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // 2. A random matching database (the paper's skew-free inputs).
    // ------------------------------------------------------------------
    let n = 20_000;
    let p = 64;
    let db = matching_database(&q, n, 42);
    println!("\ninput          : 3 binary matchings with n = {n} tuples each");

    // ------------------------------------------------------------------
    // 3. HyperCube at the space exponent: one round, load O(n / p^{1/τ*}).
    // ------------------------------------------------------------------
    let cfg = MpcConfig::new(p, analysis.space_exponent.to_f64());
    let hc = HyperCube::run(&q, &db, &cfg)?;
    let truth = mpc_query::storage::join::evaluate(&q, &db)?;
    assert!(hc.result.output.same_tuples(&truth));
    println!("\nHyperCube on p = {p} servers (ε = {}):", analysis.space_exponent);
    println!("  shares             : {:?}", hc.allocation.shares);
    println!("  answers found      : {} (ground truth {})", hc.result.output.len(), truth.len());
    println!("  rounds             : {}", hc.result.num_rounds());
    println!("  max bytes/server   : {}", hc.result.max_load_bytes());
    println!("  per-round budget   : {}", hc.result.rounds[0].budget_bytes);
    println!(
        "  replication rate   : {:.2} (≈ p^ε = {:.2})",
        hc.result.rounds[0].replication_rate,
        cfg.allowed_replication()
    );
    println!("  within budget      : {}", hc.result.within_budget());

    // ------------------------------------------------------------------
    // 4. The broadcast baseline: correct, but p-fold replication.
    // ------------------------------------------------------------------
    let cluster = Cluster::new(cfg)?;
    let broadcast = cluster.run(&BroadcastProgram::new(q.clone()), &db)?;
    println!("\nBroadcast baseline:");
    println!("  max bytes/server   : {}", broadcast.max_load_bytes());
    println!("  replication rate   : {:.2}", broadcast.rounds[0].replication_rate);
    println!("  within budget      : {}", broadcast.within_budget());
    println!(
        "\nHyperCube moves {:.1}x less data to the busiest server than broadcast.",
        broadcast.max_load_bytes() as f64 / hc.result.max_load_bytes() as f64
    );
    Ok(())
}
