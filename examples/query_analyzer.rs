//! An interactive query analyser: parse a conjunctive query from the
//! command line and print everything the paper's theory says about it —
//! fractional covers, space exponent, HyperCube shares, and round bounds.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example query_analyzer -- "C4(a,b,c,d) :- R(a,b), S(b,c), T(c,d), U(d,a)" 64
//! ```
//!
//! Both arguments are optional; the default analyses `C3` on 64 servers.

use mpc_query::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let q = if args.len() > 1 { parse_query(&args[1])? } else { families::triangle() };
    let p: usize = if args.len() > 2 { args[2].parse()? } else { 64 };

    let analysis = QueryAnalysis::analyze(&q)?;
    println!("query                : {}", analysis.query_text);
    println!("variables / atoms    : {} / {}", analysis.num_vars, analysis.num_atoms);
    println!("characteristic χ     : {}", analysis.characteristic);
    println!("tree-like            : {}", analysis.is_tree_like);
    println!("radius / diameter    : {:?} / {:?}", analysis.radius, analysis.diameter);
    println!("τ* (covering number) : {}", analysis.tau_star);
    println!("space exponent ε*    : {}", analysis.space_exponent);
    println!("E[|q|] on matchings  : n^{} (Lemma 3.4)", analysis.expected_answer_exponent);

    println!("\noptimal fractional vertex cover:");
    for (v, w) in q.var_names().iter().zip(&analysis.vertex_cover) {
        println!("  v({v}) = {w}");
    }

    let shares = analysis.shares_for(p)?;
    println!("\nHyperCube shares for p = {p} (cells used: {}):", shares.num_cells());
    for (v, s) in q.var_names().iter().zip(&shares.shares) {
        println!("  p({v}) = {s}");
    }
    println!("worst-case tuple replication: {}", shares.max_replication(&q)?);

    if q.is_connected() {
        println!("\nround bounds (tuple-based MPC):");
        for eps in [Rational::ZERO, Rational::new(1, 2), analysis.space_exponent] {
            let bounds = analysis.round_bounds(eps)?;
            println!(
                "  ε = {:>5}: lower ≥ {}, greedy plan uses {}, radius bound ≤ {}",
                eps.to_string(),
                bounds.lower,
                bounds.plan_depth,
                bounds.radius_upper
            );
        }
    } else {
        println!("\n(query is disconnected; round bounds apply to connected queries)");
    }
    Ok(())
}
