//! The paper's motivating example (Section 1, after Ullman): find all
//! pairwise drug interactions by applying a user-defined function to every
//! pair of drugs. As a query this is the cartesian product
//! `q(x, y) = Drugs1(x), Drugs2(y)`, and the replication/space tradeoff is
//! exactly the one the introduction describes: `g` groups per side cost a
//! replication of `g` with reducers of size `2n/g`. With `p` known, the
//! optimal choice is the `√p × √p` grid — which is precisely what the
//! HyperCube share allocation computes from the fractional vertex cover
//! `(1/2, 1/2)`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example drug_interactions
//! ```

use mpc_query::core::baseline::BroadcastProgram;
use mpc_query::prelude::*;
use mpc_query::sim::Cluster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two "drug catalogues" of n entries each. A tuple is just the drug id;
    // the UDF (interaction check) runs wherever a pair is co-located.
    let n: u64 = 2_000;
    let q = Query::new("Interactions", vec![("Drugs1", vec!["x"]), ("Drugs2", vec!["y"])])?;

    let mut db = Database::new(n);
    db.insert_relation(Relation::from_tuples(
        "Drugs1",
        1,
        (1..=n).map(|i| [i]).collect::<Vec<_>>(),
    )?);
    db.insert_relation(Relation::from_tuples(
        "Drugs2",
        1,
        (1..=n).map(|i| [i]).collect::<Vec<_>>(),
    )?);

    let analysis = QueryAnalysis::analyze(&q)?;
    println!("query            : {}", analysis.query_text);
    println!("τ*               : {} (each side needs weight 1/τ*)", analysis.tau_star);
    println!("space exponent   : {} → replication √p", analysis.space_exponent);

    println!(
        "\n{:>6} {:>12} {:>16} {:>16} {:>12}",
        "p", "shares", "HC max bytes", "broadcast bytes", "pairs found"
    );
    for p in [4usize, 16, 64, 256] {
        let cfg = MpcConfig::new(p, analysis.space_exponent.to_f64());
        let hc = HyperCube::run(&q, &db, &cfg)?;
        let cluster = Cluster::new(cfg)?;
        let broadcast = cluster.run(&BroadcastProgram::new(q.clone()), &db)?;
        println!(
            "{:>6} {:>12} {:>16} {:>16} {:>12}",
            p,
            format!("{:?}", hc.allocation.shares),
            hc.result.max_load_bytes(),
            broadcast.max_load_bytes(),
            hc.result.output.len(),
        );
        assert_eq!(hc.result.output.len() as u64, n * n);
    }

    println!(
        "\nThe HyperCube grid replicates each side only √p times, so the busiest \
         server receives Θ(n/√p) values instead of the full 2n."
    );
    Ok(())
}
