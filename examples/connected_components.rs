//! Connected components on the MPC model (Theorem 4.10).
//!
//! On *sparse* graphs — here the paper's layered path graphs, whose
//! components are the answers of a long chain query — every tuple-based
//! algorithm needs Ω(log p) rounds, and the natural label-propagation
//! algorithm needs Θ(diameter) rounds. On *dense* graphs two rounds
//! suffice (spanning-forest collection). This example measures both.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example connected_components
//! ```

use mpc_query::graph::experiment::{theorem_4_10_experiment, CcExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CcExperimentConfig { layer_size: 64, dense_degree: 32, ..Default::default() };
    let ps = [4usize, 16, 64, 256];
    let rows = theorem_4_10_experiment(&ps, &config)?;

    println!(
        "{:>6} {:>10} {:>14} {:>16} {:>14} {:>22}",
        "p",
        "layers k",
        "sparse rounds",
        "sparse in budget",
        "dense rounds",
        "dense-on-sparse in budget"
    );
    for row in &rows {
        println!(
            "{:>6} {:>10} {:>14} {:>16} {:>14} {:>22}",
            row.p,
            row.k,
            row.sparse_rounds,
            row.sparse_within_budget,
            row.dense_rounds,
            row.dense_on_sparse_within_budget
        );
    }
    println!(
        "\nAs p grows, the sparse instances (k = ⌊√p⌋ layers) force more and more \
         rounds, while dense graphs stay at two — the dichotomy behind Theorem 4.10."
    );
    Ok(())
}
