//! Multi-hop path queries on a follower graph: the rounds-vs-replication
//! tradeoff of Section 4 (Example 4.2, Table 2), on the chain query `L_k`.
//!
//! A `k`-hop path query `L_k(x0,…,xk) = S1(x0,x1), …, Sk(x_{k−1},x_k)`
//! cannot be computed in one round without huge replication
//! (`ε* = 1 − 1/⌈k/2⌉`), but a query plan whose operators are short chains
//! computes it in `⌈log_{kε} k⌉` rounds at space exponent ε. This example
//! runs `L_16` at ε ∈ {0, 1/2, 2/3} and reports the number of rounds and
//! the per-round communication measured by the simulator.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multihop_paths
//! ```

use mpc_query::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 16;
    let q = families::chain(k);
    let n = 5_000;
    let p = 64;
    let db = matching_database(&q, n, 7);
    let truth = mpc_query::storage::join::evaluate(&q, &db)?;
    println!("query: {} (k = {k} hops), n = {n}, p = {p}", q.name());
    println!("space exponent for ONE round: {}\n", QueryAnalysis::analyze(&q)?.space_exponent);

    println!(
        "{:>8} {:>8} {:>10} {:>18} {:>16} {:>10}",
        "ε", "rounds", "operators", "max bytes/round", "total bytes", "correct"
    );
    for eps in [Rational::ZERO, Rational::new(1, 2), Rational::new(2, 3)] {
        let plan = MultiRoundPlan::build(&q, eps)?;
        let outcome = MultiRound::run_plan(&plan, &db, p, 11)?;
        let correct = outcome.result.output.same_tuples(&truth);
        println!(
            "{:>8} {:>8} {:>10} {:>18} {:>16} {:>10}",
            eps.to_string(),
            outcome.result.num_rounds(),
            plan.num_operators(),
            outcome.result.max_load_bytes(),
            outcome.result.total_bytes(),
            correct
        );
    }

    println!(
        "\nMore replication per round (larger ε) buys fewer rounds: \
         log₂ 16 = 4 rounds at ε = 0, log₄ 16 = 2 rounds at ε = 1/2."
    );
    Ok(())
}
