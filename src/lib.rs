//! # mpc-query
//!
//! Parallel query processing in the **Massively Parallel Communication
//! (MPC)** model — a faithful, executable reproduction of *Beame, Koutris &
//! Suciu, "Communication Steps for Parallel Query Processing" (PODS 2013)*.
//!
//! The library answers, for any full conjunctive query `q` and any number
//! of servers `p`:
//!
//! * how to shuffle the data in **one round** with the provably minimal
//!   replication — the **HyperCube** algorithm with share exponents
//!   derived from the fractional vertex cover
//!   ([`core::hypercube`], [`core::shares`]);
//! * what that minimum is — the **space exponent** `ε*(q) = 1 − 1/τ*(q)`
//!   ([`core::space_exponent`]) — and what fraction of the answers any
//!   one-round algorithm can report below it
//!   ([`core::hypercube::PartialHyperCube`]);
//! * how many **rounds** are needed and sufficient at a given replication
//!   level — multi-round plans, their execution, and the matching round
//!   lower bounds ([`core::multiround`]);
//! * what this implies for iterative graph computations — connected
//!   components need `Ω(log p)` rounds on sparse graphs ([`graph`]).
//!
//! All algorithms run on an in-process cluster simulator ([`sim`]) that
//! accounts for exactly the costs the theory talks about: bytes received
//! per server per round, replication rates, and round counts.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`cq`] | `mpc-cq` | conjunctive queries, hypergraphs, χ, radius/diameter, query families |
//! | [`lp`] | `mpc-lp` | exact rational simplex, vertex cover / edge packing LPs, τ* |
//! | [`storage`] | `mpc-storage` | tuples, relations, databases, local joins, size estimates |
//! | [`data`] | `mpc-data` | matching databases, skewed data, layered graphs |
//! | [`sim`] | `mpc-sim` | the MPC(ε) cluster simulator (synchronous + event-driven backends, schedule metrics) and program trait |
//! | [`core`] | `mpc-core` | HyperCube, shares, space exponents, multi-round plans and bounds |
//! | [`skew`] | `mpc-skew` | heavy-hitter detection and skew-resilient residual plans |
//! | [`graph`] | `mpc-graph` | connected components on the MPC model |
//! | [`net`] | `mpc-net` | framed block transport (in-process + TCP), spawned-process runner, multi-query service |
//!
//! ## Quick start
//!
//! ```
//! use mpc_query::prelude::*;
//!
//! // Analyse the triangle query and run it on 64 simulated servers.
//! let q = mpc_query::cq::families::triangle();
//! let analysis = QueryAnalysis::analyze(&q)?;
//! assert_eq!(analysis.space_exponent, Rational::new(1, 3));
//!
//! let db = mpc_query::data::matching_database(&q, 1_000, 42);
//! let cfg = MpcConfig::new(64, analysis.space_exponent.to_f64());
//! let run = HyperCube::run(&q, &db, &cfg)?;
//! assert!(run.result.within_budget());
//!
//! // The parallel result equals the sequential join.
//! let truth = mpc_query::storage::join::evaluate(&q, &db)?;
//! assert!(run.result.output.same_tuples(&truth));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpc_cq as cq;
pub use mpc_data as data;
pub use mpc_graph as graph;
pub use mpc_lp as lp;
pub use mpc_net as net;
pub use mpc_sim as sim;
pub use mpc_skew as skew;
pub use mpc_storage as storage;

/// The paper's algorithms and bounds (re-export of `mpc-core`).
pub use mpc_core as core;

/// Commonly used items.
pub mod prelude {
    pub use mpc_core::analysis::QueryAnalysis;
    pub use mpc_core::hypercube::{HyperCube, PartialHyperCube};
    pub use mpc_core::multiround::executor::MultiRound;
    pub use mpc_core::multiround::load::PlanLoadPrediction;
    pub use mpc_core::multiround::planner::MultiRoundPlan;
    pub use mpc_core::output_sensitive::OutputSensitiveBounds;
    pub use mpc_core::shares::ShareAllocation;
    pub use mpc_core::space_exponent::{gamma_one_contains, space_exponent};
    pub use mpc_core::wco::{PlannerChoice, WcoLoadPrediction, WcoProgram, WorstCaseOptimalPlan};
    pub use mpc_cq::{families, parser::parse_query, Query};
    pub use mpc_data::{matching_database, output_controlled_database};
    pub use mpc_lp::Rational;
    pub use mpc_net::{QueryJob, QueryService, ServiceConfig, TransportKind};
    pub use mpc_sim::{AsyncConfig, Backend, Cluster, CostModel, MpcConfig, StragglerSpec};
    pub use mpc_skew::{HeavyHitterPolicy, SkewResilient};
    pub use mpc_storage::{Database, Relation, Tuple};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Compile-time smoke test: every symbol the prelude advertises
    /// resolves. Types are checked by naming them in signatures, functions
    /// by coercion to a function value; the assertions only keep the
    /// bindings observably alive.
    #[test]
    fn prelude_symbols_resolve() {
        #[allow(clippy::too_many_arguments)] // one parameter per advertised type
        fn _takes_types(
            _: &QueryAnalysis,
            _: &HyperCube,
            _: &PartialHyperCube,
            _: &MultiRound,
            _: &MultiRoundPlan,
            _: &PlanLoadPrediction,
            _: &OutputSensitiveBounds,
            _: &ShareAllocation,
            _: &Query,
            _: &Rational,
            _: &Cluster,
            _: &MpcConfig,
            _: &AsyncConfig,
            _: &Backend,
            _: &CostModel,
            _: &StragglerSpec,
            _: &Database,
            _: &Relation,
            _: &Tuple,
            _: &SkewResilient,
            _: &HeavyHitterPolicy,
            _: &QueryJob,
            _: &QueryService,
            _: &ServiceConfig,
            _: &TransportKind,
            _: &WorstCaseOptimalPlan,
            _: &WcoProgram,
            _: &WcoLoadPrediction,
            _: &PlannerChoice,
        ) {
        }
        let _parse: fn(&str) -> Result<Query, crate::cq::CqError> = parse_query;
        let _matching: fn(&Query, u64, u64) -> Database = matching_database;
        let _planted: fn(&Query, u64, u64, u64) -> crate::data::PlantedJoin =
            output_controlled_database;
        let _gamma: fn(&Query, Rational) -> Result<bool, crate::core::CoreError> =
            gamma_one_contains;
        let _eps: fn(&Query) -> Result<Rational, crate::core::CoreError> = space_exponent;
        let _triangle: fn() -> Query = families::triangle;
        assert_eq!(Rational::ZERO, Rational::new(0, 1));
    }

    #[test]
    fn prelude_exposes_the_workflow() {
        let q = parse_query("T2(z,x,y) :- S1(z,x), S2(z,y)").unwrap();
        let analysis = QueryAnalysis::analyze(&q).unwrap();
        assert_eq!(analysis.space_exponent, Rational::ZERO);
        let db = matching_database(&q, 200, 3);
        let run = HyperCube::run(&q, &db, &MpcConfig::new(8, 0.0)).unwrap();
        assert_eq!(run.result.output.len(), 200);
    }
}
