//! Workspace-local shim for the parts of `serde` this workspace uses.
//!
//! The build environment has no network access, so the real `serde` crate
//! cannot be fetched. The workspace only ever *serialises to JSON* (the
//! experiment binaries write row artefacts via `serde_json`), so the shim
//! collapses serde's data-model machinery into a single trait producing a
//! JSON [`Value`] tree. `#[derive(Serialize)]`/`#[derive(Deserialize)]` come
//! from the sibling `serde_derive` shim and are re-exported here exactly
//! like the real crate re-exports its derives.

pub use serde_derive::{Deserialize, Serialize};

// The derives expand to `::serde::` paths; make them resolve in this
// crate's own tests too.
extern crate self as serde;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A JSON value tree — the serialisation target of the [`Serialize`] trait.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON signed integer.
    Int(i128),
    /// JSON unsigned integer.
    UInt(u128),
    /// JSON floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, with insertion-ordered keys (serde-like field order).
    Object(Vec<(String, Value)>),
}

/// Types that can be serialised into a JSON [`Value`].
///
/// Derivable via `#[derive(Serialize)]` for named structs, tuple structs and
/// unit-variant enums; `#[serde(skip)]` omits a field.
pub trait Serialize {
    /// Convert `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Marker trait standing in for serde's `Deserialize`.
///
/// Nothing in this workspace deserializes at runtime; the derive exists so
/// `#[derive(Deserialize)]` on seed types keeps compiling.
pub trait Deserialize {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::UInt(*self as u128) }
        }
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Int(*self as i128) }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128, usize);
impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Serialize> Serialize for HashSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_json_value())).collect())
    }
}
impl<K: std::fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_json_value())).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Named {
        a: u32,
        #[serde(skip)]
        #[allow(dead_code)]
        hidden: Vec<u8>,
        b: String,
    }

    #[derive(Serialize)]
    struct Newtype(Vec<u64>);

    #[derive(Serialize)]
    struct WithArrowType {
        #[serde(skip)]
        #[allow(dead_code)]
        f: fn(u32) -> u32,
        count: u64,
    }

    #[derive(Serialize)]
    enum Unit {
        #[allow(dead_code)]
        A,
        B,
    }

    #[test]
    fn named_struct_skips_marked_fields() {
        let v = Named { a: 7, hidden: vec![1], b: "x".into() }.to_json_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".to_string(), Value::UInt(7)),
                ("b".to_string(), Value::String("x".into())),
            ])
        );
    }

    #[test]
    fn newtype_serialises_as_inner() {
        assert_eq!(
            Newtype(vec![1, 2]).to_json_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn unit_enum_serialises_as_name() {
        assert_eq!(Unit::B.to_json_value(), Value::String("B".into()));
    }

    #[test]
    fn arrow_in_field_type_does_not_swallow_later_fields() {
        let v = WithArrowType { f: |x| x, count: 3 }.to_json_value();
        assert_eq!(v, Value::Object(vec![("count".to_string(), Value::UInt(3))]));
    }

    #[test]
    fn maps_and_options() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Some(1u8));
        m.insert("n".to_string(), None);
        assert_eq!(
            m.to_json_value(),
            Value::Object(vec![("k".to_string(), Value::UInt(1)), ("n".to_string(), Value::Null),])
        );
    }
}
