//! Workspace-local shim for the parts of `rayon` this workspace uses:
//! `slice.par_iter().map(f).collect()`.
//!
//! The build environment has no network access, so the real `rayon` crate
//! cannot be fetched. The simulator only needs an order-preserving parallel
//! map over a slice, which `std::thread::scope` provides directly: the
//! slice is split into one contiguous chunk per available core, each chunk
//! is mapped on its own scoped thread, and the per-chunk results are
//! re-concatenated in order.

use std::num::NonZeroUsize;

/// `rayon::prelude` stand-in; glob-import to get [`IntoParallelRefIterator`].
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// Collections offering a by-reference parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The element type yielded by reference.
    type Item: Sync + 'data;

    /// A parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map every element through `f`, preserving order.
    pub fn map<U, F>(self, f: F) -> ParMap<'data, T, F>
    where
        U: Send,
        F: Fn(&'data T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
#[derive(Debug)]
pub struct ParMap<'data, T: Sync, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Execute the map across all cores and collect the results in input
    /// order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(&'data T) -> U + Sync,
        C: FromIterator<U>,
    {
        let n = self.items.len();
        let threads =
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk_size = n.div_ceil(threads);
        let f = &self.f;
        let per_chunk: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("parallel map worker panicked")).collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_and_maps_everything() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out.len(), input.len());
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one[..].par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn collects_results_like_the_simulator_does() {
        let input: Vec<i32> = (0..100).collect();
        let out: Vec<Result<i32, String>> = input
            .par_iter()
            .map(|x| if *x % 2 == 0 { Ok(*x) } else { Err("odd".into()) })
            .collect();
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 50);
    }
}
