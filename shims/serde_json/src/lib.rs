//! Workspace-local shim for the parts of `serde_json` this workspace uses:
//! rendering a [`serde::Serialize`] value as (pretty-printed) JSON text.
//!
//! The build environment has no network access, so the real `serde_json`
//! crate cannot be fetched. This shim renders the JSON [`serde::Value`]
//! tree produced by the vendored serde shim.

use serde::{Serialize, Value};

/// Error type of the JSON serialisers.
///
/// Rendering a [`Value`] tree to text cannot actually fail, but the
/// signatures mirror `serde_json` so call sites keep compiling unchanged.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialisation error")
    }
}

impl std::error::Error for Error {}

/// Serialise `value` as a compact JSON string.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialise `value` as a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Like serde_json, print floats losslessly and keep integral
                // floats distinguishable from integers.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null"); // serde_json maps NaN/inf to null
            }
        }
        Value::String(s) => push_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                push_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_renders_nested_rows() {
        let rows = vec![("alpha".to_string(), 1u64), ("be\"ta".to_string(), 2)];
        let json = super::to_string_pretty(&rows).unwrap();
        assert!(json.starts_with('['));
        assert!(json.contains("\"alpha\""));
        assert!(json.contains("\\\""));
        let compact = super::to_string(&rows).unwrap();
        assert!(!compact.contains('\n'));
    }

    #[test]
    fn floats_and_specials() {
        assert_eq!(super::to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(super::to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(super::to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(super::to_string(&Option::<u8>::None).unwrap(), "null");
    }
}
