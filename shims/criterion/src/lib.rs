//! Workspace-local shim for the parts of `criterion` this workspace uses.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This shim keeps the bench sources compiling
//! unchanged and gives two behaviours, like criterion itself:
//!
//! * under `cargo bench` (cargo passes `--bench`): each benchmark runs a
//!   warm-up iteration and then `sample_size` timed iterations, printing
//!   min/mean/max wall-clock times;
//! * under `cargo test` (no `--bench` flag): each benchmark closure runs
//!   exactly once as a smoke test, so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--bench`; test runs don't.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let bench_mode = self.bench_mode;
        if bench_mode {
            println!("\nbench group: {name}");
        }
        BenchmarkGroup { _criterion: self, name, sample_size: 10, bench_mode }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<N: Into<String>, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    bench_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (bench mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `f`, passing it the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.bench_mode, self.sample_size);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Benchmark `f` with no explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.bench_mode, self.sample_size);
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Finish the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        if !self.bench_mode {
            return;
        }
        match &bencher.samples[..] {
            [] => println!("  {}/{}: benchmark body never called Bencher::iter", self.name, id.0),
            samples => {
                let min = samples.iter().min().expect("non-empty");
                let max = samples.iter().max().expect("non-empty");
                let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
                println!(
                    "  {}/{}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
                    self.name,
                    id.0,
                    samples.len()
                );
            }
        }
    }
}

/// Times the closure handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(bench_mode: bool, sample_size: usize) -> Self {
        Bencher { bench_mode, sample_size, samples: Vec::new() }
    }

    /// Run (and in bench mode, time) the benchmarked routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion { bench_mode: false };
        let mut calls = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(50);
            group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
                b.iter(|| calls += 1);
            });
            group.finish();
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_times_sample_size_iterations() {
        let mut c = Criterion { bench_mode: true };
        let mut calls = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.bench_function(BenchmarkId::new("f", "x"), |b| {
                b.iter(|| calls += 1);
            });
            group.finish();
        }
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }
}
