//! Workspace-local shim for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access, so the real `rand` crate
//! cannot be fetched. All randomness in the workspace is deterministic and
//! seeded (`StdRng::seed_from_u64`), so a small, fast, fully deterministic
//! SplitMix64 generator behind the same API surface is a faithful stand-in:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates),
//! * [`seq::index::sample`] (Floyd's distinct-sampling algorithm).
//!
//! Sequences differ from the real `rand` for a given seed, but every
//! generator here is deterministic given its seed, which is the only
//! property the experiments rely on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// SplitMix64 has a full 2^64 period and passes standard statistical
    /// batteries; it is more than adequate for hash seeds, shuffles and
    /// synthetic data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable over a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range of a 128-bit type: any value works.
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                // A modulo over a draw widened to 128 bits keeps the bias
                // below 2^-64, i.e. unobservable.
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                low.wrapping_add((draw % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (low as i128 + (draw % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + num_helpers::StepDown> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

mod num_helpers {
    /// Decrement by one unit, turning an exclusive upper bound inclusive.
    pub trait StepDown {
        /// `self - 1`.
        fn step_down(self) -> Self;
    }
    macro_rules! impl_step_down {
        ($($t:ty),*) => {$(
            impl StepDown for $t {
                fn step_down(self) -> Self { self - 1 }
            }
        )*};
    }
    impl_step_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a uniform value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }

    /// Draw a uniform value from a range (`a..b` or `a..=b`).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::generate(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Distinct-index sampling, mirroring `rand::seq::index`.
    pub mod index {
        use super::super::{Rng, RngCore};
        use std::collections::HashSet;

        /// A set of sampled indices (always the by-`usize` representation).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly at
        /// random (Floyd's algorithm, `O(amount)` expected work).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} indices from {length}");
            let mut chosen = HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in (length - amount)..length {
                let t = rng.gen_range(0..=j);
                let pick = if chosen.insert(t) { t } else { j };
                if pick != t {
                    chosen.insert(pick);
                }
                out.push(pick);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: u64 = rng.gen_range(1..=100);
            assert!((1..=100).contains(&x));
            let y: usize = rng.gen_range(0..10);
            assert!(y < 10);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_exclusive_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.gen_range(0..0);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let idx = super::seq::index::sample(&mut rng, 1_000, 64).into_vec();
        assert_eq!(idx.len(), 64);
        let unique: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(unique.len(), 64);
        assert!(idx.iter().all(|&i| i < 1_000));
    }

    #[test]
    fn full_sample_returns_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut idx = super::seq::index::sample(&mut rng, 16, 16).into_vec();
        idx.sort_unstable();
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
    }
}
