//! Workspace-local `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the vendored `serde` shim.
//!
//! The build environment has no network access, so the real `serde` +
//! `serde_derive` crates cannot be fetched. This crate reimplements just the
//! subset the workspace uses, with a hand-rolled token walker instead of
//! `syn`:
//!
//! * named-field structs,
//! * tuple structs (newtype semantics for a single field),
//! * enums with unit variants only,
//! * the `#[serde(skip)]` field attribute.
//!
//! `Serialize` expands to an impl of the shim's
//! `serde::Serialize::to_json_value`; `Deserialize` expands to an empty
//! marker impl (nothing in the workspace deserializes at runtime).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the serde shim's `Serialize` trait. Supports named structs, tuple
/// structs, unit-variant enums and `#[serde(skip)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), \
                     ::serde::Serialize::to_json_value(&self.{f})));\n",
                    f = f.name
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Object(fields)"
            )
        }
        Shape::TupleStruct(fields) => {
            let live: Vec<usize> =
                fields.iter().enumerate().filter(|(_, f)| !f.skip).map(|(i, _)| i).collect();
            if live.len() == 1 {
                // Newtype structs serialise as their inner value, like serde.
                format!("::serde::Serialize::to_json_value(&self.{})", live[0])
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\"")).collect();
            format!("::serde::Value::String(match self {{ {} }}.to_string())", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive shim generated invalid Rust")
}

/// Derive the serde shim's `Deserialize` marker trait (an empty impl —
/// nothing in this workspace deserializes at runtime).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}\n", item.name)
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}

struct Field {
    name: String, // index as a string for tuple fields
    skip: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(parse_tuple_fields(g.stream()))
            }
            _ => Shape::NamedStruct(Vec::new()), // unit struct
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::UnitEnum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde_derive shim: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other} {name}`"),
    };

    Item { name, shape }
}

/// Skip `#[...]` attributes starting at `*i`, returning whether any of them
/// was exactly `#[serde(skip)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
            (inner.first(), inner.get(1))
        {
            if id.to_string() == "serde" && args.to_string().replace(' ', "") == "(skip)" {
                skip = true;
            }
        }
        *i += 2;
    }
    skip
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)`, `pub(super)`, ...
        if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past a type (or any token run) until a top-level `,`, tracking
/// `<`/`>` nesting so commas inside generics don't split fields. The `>` of
/// a `->` (fn-pointer / closure return type) is not a closing angle.
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '-' if matches!(tokens.get(*i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>') =>
                {
                    *i += 2; // skip `->` as a unit
                    continue;
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1; // consume the comma
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{name}`, found {other}"),
        }
        skip_until_top_level_comma(&tokens, &mut i);
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut index = 0usize;
    while i < tokens.len() {
        let skip = skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_until_top_level_comma(&tokens, &mut i);
        fields.push(Field { name: index.to_string(), skip });
        index += 1;
    }
    fields
}

fn parse_unit_variants(stream: TokenStream, enum_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                i += 1;
                skip_until_top_level_comma(&tokens, &mut i);
            }
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum `{enum_name}` has a data-carrying variant \
                 `{name}`; only unit variants are supported"
            ),
            Some(other) => panic!("serde_derive shim: unexpected token {other} in `{enum_name}`"),
        }
        variants.push(name);
    }
    variants
}
