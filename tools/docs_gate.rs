//! CI docs gate: verify that the repo's guide documents do not rot.
//!
//! Given markdown files (default: `README.md ARCHITECTURE.md
//! ROADMAP.md`), this tool checks, outside fenced code blocks:
//!
//! * **Relative links** `[text](path)` — the path must exist on disk,
//!   resolved against the linking file's directory.
//! * **Anchors** `[text](path#anchor)` / `[text](#anchor)` — the anchor
//!   must match a heading of the target file, using GitHub's slug rules
//!   (lowercase, alphanumerics kept, spaces become hyphens, other
//!   punctuation dropped, duplicates suffixed `-1`, `-2`, …).
//! * **Backticked repo paths** — an inline code span that looks like a
//!   repo path (no whitespace, contains `/`, first segment is a
//!   top-level directory such as `crates/` or `tools/`) must exist, so
//!   prose referring to a file that was moved or deleted fails the
//!   build instead of silently going stale.
//!
//! `http(s):`/`mailto:` targets are skipped — CI has no network.
//!
//! ```text
//! docs_gate [file.md]...
//! ```
//!
//! Exit status: 0 when every reference resolves, 1 otherwise (each
//! failure is reported as `file:line: message`).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Top-level directories whose backticked mentions are treated as repo
/// paths and checked for existence.
const PATH_ROOTS: [&str; 7] = ["crates", "tools", "tests", "shims", "examples", "src", ".github"];

/// GitHub's heading-to-anchor slug: lowercase, keep alphanumerics and
/// hyphens, map spaces to hyphens, drop everything else.
fn slug(heading: &str) -> String {
    let mut out = String::new();
    for c in heading.trim().chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
        } else if c == ' ' || c == '-' {
            out.push('-');
        }
    }
    out
}

/// Strip markdown formatting GitHub ignores when slugging a heading:
/// backticks, emphasis markers, and link syntax (`[text](target)` keeps
/// only `text`).
fn heading_text(raw: &str) -> String {
    let mut out = String::new();
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '`' | '*' => {}
            '[' => {}
            ']' => {
                // Drop a following "(target)" group, if any.
                if chars.peek() == Some(&'(') {
                    for t in chars.by_ref() {
                        if t == ')' {
                            break;
                        }
                    }
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// All heading anchors of a markdown document, with GitHub's duplicate
/// suffixing.
fn anchors(text: &str) -> Vec<String> {
    let mut seen: Vec<(String, usize)> = Vec::new();
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#');
        if !title.starts_with(' ') && !title.is_empty() {
            continue; // "#foo" is not a heading
        }
        let base = slug(&heading_text(title));
        match seen.iter_mut().find(|(s, _)| *s == base) {
            Some((_, n)) => {
                *n += 1;
                out.push(format!("{base}-{n}"));
            }
            None => {
                seen.push((base.clone(), 0));
                out.push(base);
            }
        }
    }
    out
}

/// Extract `[text](target)` targets from one line, ignoring inline code
/// spans (odd segments of a backtick split).
fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, seg) in line.split('`').enumerate() {
        if i % 2 == 1 {
            continue;
        }
        let mut rest = seg;
        while let Some(pos) = rest.find("](") {
            let after = &rest[pos + 2..];
            match after.find(')') {
                Some(end) => {
                    out.push(after[..end].to_string());
                    rest = &after[end + 1..];
                }
                None => break,
            }
        }
    }
    out
}

/// Extract backticked repo-path candidates from one line.
fn path_mentions(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (i, seg) in line.split('`').enumerate() {
        if i % 2 == 0 || seg.contains(char::is_whitespace) || !seg.contains('/') {
            continue;
        }
        let first = seg.split('/').next().unwrap_or("");
        if PATH_ROOTS.contains(&first) {
            out.push(seg.to_string());
        }
    }
    out
}

/// Check one markdown file; push failures as `file:line: message`.
fn check_file(path: &Path, failures: &mut Vec<String>) {
    let Ok(text) = fs::read_to_string(path) else {
        failures.push(format!("{}: unreadable", path.display()));
        return;
    };
    let own_anchors = anchors(&text);
    let dir = path.parent().unwrap_or(Path::new("."));
    let mut in_fence = false;
    for (idx, line) in text.lines().enumerate() {
        let at = format!("{}:{}", path.display(), idx + 1);
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for target in link_targets(line) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) => (f, Some(a.to_string())),
                None => (target.as_str(), None),
            };
            let (resolved, target_anchors): (PathBuf, Vec<String>) = if file_part.is_empty() {
                (path.to_path_buf(), own_anchors.clone())
            } else {
                let resolved = dir.join(file_part);
                if !resolved.exists() {
                    failures.push(format!("{at}: dead link target `{file_part}`"));
                    continue;
                }
                let linked = match anchor {
                    Some(_) => fs::read_to_string(&resolved).unwrap_or_default(),
                    None => String::new(),
                };
                (resolved, anchors(&linked))
            };
            if let Some(a) = anchor {
                if !target_anchors.contains(&a) {
                    failures.push(format!("{at}: dead anchor `#{a}` in `{}`", resolved.display()));
                }
            }
        }
        for mention in path_mentions(line) {
            if !Path::new(mention.trim_end_matches('/')).exists() {
                failures.push(format!("{at}: stale repo path `{mention}`"));
            }
        }
    }
}

fn main() -> ExitCode {
    let mut files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        files = vec!["README.md".into(), "ARCHITECTURE.md".into(), "ROADMAP.md".into()];
    }
    let mut failures = Vec::new();
    for f in &files {
        check_file(Path::new(f), &mut failures);
    }
    if failures.is_empty() {
        println!("docs_gate: {} file(s) clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("{f}");
        }
        eprintln!("docs_gate: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_match_github() {
        assert_eq!(slug("The adaptive runtime"), "the-adaptive-runtime");
        assert_eq!(slug("Failure model & recovery"), "failure-model--recovery");
        assert_eq!(slug("Networking & service"), "networking--service");
        assert_eq!(
            slug(&heading_text(" The one-round / multi-round story")),
            "the-one-round--multi-round-story"
        );
        assert_eq!(slug(&heading_text(" A `code` [link](x.md) title")), "a-code-link-title");
    }

    #[test]
    fn duplicate_headings_are_suffixed() {
        let text = "# A\n## Same\n## Same\n";
        assert_eq!(anchors(text), vec!["a", "same", "same-1"]);
    }

    #[test]
    fn fenced_blocks_are_ignored() {
        let text = "# Top\n```text\n# not a heading\n[x](nowhere.md)\n```\n";
        assert_eq!(anchors(text), vec!["top"]);
        let fenced_line: Vec<String> = link_targets("[x](real.md) `[y](fake.md)`");
        assert_eq!(fenced_line, vec!["real.md"]);
    }

    #[test]
    fn path_mentions_are_filtered() {
        assert_eq!(path_mentions("see `crates/lp/src` and `n_R/p_x` maths"), vec!["crates/lp/src"]);
        assert!(path_mentions("ratio `fresh/base` only").is_empty());
        assert!(path_mentions("no spans here").is_empty());
    }
}
