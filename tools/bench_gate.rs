//! CI bench gate: compare a freshly produced `BENCH_*.json` artefact
//! against the committed baseline and fail on regressions.
//!
//! The artefacts are the machine-readable rows the `lp_solver` and
//! `async_backend` benches write via `mpc_bench::maybe_write_json`:
//! a JSON array of `{"name": "...", "mean_ns": <int>, "iterations": <int>}`
//! objects. This tool is dependency-free (the workspace's `serde_json`
//! shim has no parser) and parses exactly that shape.
//!
//! **Gate rule.** Per-case ratios `fresh/base` are first normalised by
//! their median — the median ratio is the hardware factor between the
//! machine that recorded the baseline and the machine running the gate,
//! and dividing it out makes the gate portable across runners. A case
//! fails when its normalised ratio exceeds the threshold (default 2.0):
//! "more than 2× slower than the suite-wide median regression". Cases
//! present in only one file are reported but do not fail the gate (bench
//! suites legitimately grow).
//!
//! **Ratchets.** `--max-ratio <numerator> <denominator> <limit>`
//! (repeatable) additionally asserts `mean_ns(numerator) ≤ limit ×
//! mean_ns(denominator)` *within the fresh artefact* — both cases ran on
//! the same machine in the same process, so the bound needs no hardware
//! normalisation and cannot drift with runner speed. CI uses it to lock
//! the async backend at ≤ 1.2× the synchronous backend on the headline
//! HyperCube case.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--threshold 2.0]
//!            [--max-ratio <case_a> <case_b> <limit>]...
//! ```
//!
//! Exit status: 0 when every matched case passes, 1 on regression, a
//! violated ratchet, or unreadable/empty input.

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
struct BenchRow {
    name: String,
    mean_ns: u128,
}

/// Parse the fixed artefact shape: a JSON array of flat objects with
/// `"name"` (string) and `"mean_ns"` (unsigned integer) members. Other
/// members (e.g. `"iterations"`) are ignored. Returns `Err` with a
/// description on any shape violation.
fn parse_rows(text: &str) -> Result<Vec<BenchRow>, String> {
    let mut rows = Vec::new();
    let body = text.trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or("artefact is not a JSON array")?;
    for (i, object) in body.split('}').enumerate() {
        let object = object.trim().trim_start_matches(',').trim();
        if object.is_empty() {
            continue;
        }
        let object = object.strip_prefix('{').ok_or(format!("row {i}: expected an object"))?;
        let mut name: Option<String> = None;
        let mut mean_ns: Option<u128> = None;
        for field in split_top_level_fields(object) {
            let (key, value) =
                field.split_once(':').ok_or(format!("row {i}: member without a colon"))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "name" => {
                    let v = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or(format!("row {i}: name is not a string"))?;
                    name = Some(v.to_string());
                }
                "mean_ns" => {
                    let v = value
                        .parse::<u128>()
                        .map_err(|e| format!("row {i}: mean_ns not an integer: {e}"))?;
                    mean_ns = Some(v);
                }
                _ => {}
            }
        }
        rows.push(BenchRow {
            name: name.ok_or(format!("row {i}: missing name"))?,
            mean_ns: mean_ns.ok_or(format!("row {i}: missing mean_ns"))?,
        });
    }
    if rows.is_empty() {
        return Err("artefact contains no rows".to_string());
    }
    Ok(rows)
}

/// Split the member list of a flat JSON object on commas that are outside
/// string literals (names like `cache_cold/TT2` contain no commas today,
/// but quoted commas must not split a member).
fn split_top_level_fields(object: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut start = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in object.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                fields.push(&object[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < object.len() {
        fields.push(&object[start..]);
    }
    fields
}

/// Median of a non-empty slice (mean of the middle pair for even lengths).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// The comparison report: per-case normalised ratios plus bookkeeping.
struct GateReport {
    hardware_factor: f64,
    /// `(name, raw_ratio, normalised_ratio)` per matched case.
    cases: Vec<(String, f64, f64)>,
    only_in_base: Vec<String>,
    only_in_fresh: Vec<String>,
}

/// Compare fresh rows against the baseline.
fn compare(base: &[BenchRow], fresh: &[BenchRow]) -> Result<GateReport, String> {
    let mut cases = Vec::new();
    let mut only_in_base = Vec::new();
    for b in base {
        match fresh.iter().find(|f| f.name == b.name) {
            Some(f) => {
                let ratio = f.mean_ns.max(1) as f64 / b.mean_ns.max(1) as f64;
                cases.push((b.name.clone(), ratio, 0.0));
            }
            None => only_in_base.push(b.name.clone()),
        }
    }
    let only_in_fresh: Vec<String> = fresh
        .iter()
        .filter(|f| base.iter().all(|b| b.name != f.name))
        .map(|f| f.name.clone())
        .collect();
    if cases.is_empty() {
        return Err("no case names in common between baseline and fresh artefact".to_string());
    }
    let mut ratios: Vec<f64> = cases.iter().map(|(_, r, _)| *r).collect();
    let hardware_factor = median(&mut ratios);
    for case in &mut cases {
        case.2 = case.1 / hardware_factor;
    }
    Ok(GateReport { hardware_factor, cases, only_in_base, only_in_fresh })
}

/// A `--max-ratio` ratchet: `mean_ns(numerator) ≤ limit × mean_ns(denominator)`
/// checked within one artefact.
#[derive(Debug, Clone)]
struct MaxRatio {
    numerator: String,
    denominator: String,
    limit: f64,
}

/// Check the ratchets against the fresh rows. Returns the per-ratchet
/// report lines and the names of violated ratchets.
fn check_ratchets(
    fresh: &[BenchRow],
    ratchets: &[MaxRatio],
) -> Result<(String, Vec<String>), String> {
    let mut out = String::new();
    let mut violated = Vec::new();
    for r in ratchets {
        let num = fresh
            .iter()
            .find(|f| f.name == r.numerator)
            .ok_or(format!("--max-ratio case {} not in the fresh artefact", r.numerator))?;
        let den = fresh
            .iter()
            .find(|f| f.name == r.denominator)
            .ok_or(format!("--max-ratio case {} not in the fresh artefact", r.denominator))?;
        let ratio = num.mean_ns.max(1) as f64 / den.mean_ns.max(1) as f64;
        let verdict = if ratio > r.limit { "VIOLATED" } else { "ok" };
        let _ = writeln!(
            out,
            "  ratchet {} / {}: {ratio:.3}× (limit {:.3}×) — {verdict}",
            r.numerator, r.denominator, r.limit
        );
        if ratio > r.limit {
            violated.push(format!("{} / {}", r.numerator, r.denominator));
        }
    }
    Ok((out, violated))
}

fn run(
    baseline_path: &str,
    fresh_path: &str,
    threshold: f64,
    ratchets: &[MaxRatio],
) -> Result<String, String> {
    let base_text = fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let fresh_text = fs::read_to_string(fresh_path)
        .map_err(|e| format!("cannot read fresh artefact {fresh_path}: {e}"))?;
    let base = parse_rows(&base_text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = parse_rows(&fresh_text).map_err(|e| format!("{fresh_path}: {e}"))?;
    let report = compare(&base, &fresh)?;
    let (ratchet_lines, violated) = check_ratchets(&fresh, ratchets)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench gate: {} matched case(s), hardware factor {:.3} (median fresh/base ratio)",
        report.cases.len(),
        report.hardware_factor
    );
    if report.hardware_factor > threshold {
        // Median normalisation cancels uniform slowdowns by design, so a
        // large hardware factor is either a slower runner or a real
        // across-the-board regression — surface it loudly either way.
        let _ = writeln!(
            out,
            "WARNING: median ratio {:.2} exceeds the threshold — either this runner is \
             much slower than the baseline recorder, or EVERY case regressed together \
             (which the per-case gate cannot see)",
            report.hardware_factor
        );
    }
    let mut regressions = Vec::new();
    for (name, raw, normalised) in &report.cases {
        let verdict = if *normalised > threshold { "REGRESSED" } else { "ok" };
        let _ = writeln!(out, "  {name}: raw {raw:.3}×, vs median {normalised:.3}× — {verdict}");
        if *normalised > threshold {
            regressions.push(name.clone());
        }
    }
    for name in &report.only_in_base {
        let _ = writeln!(out, "  (baseline-only case, skipped: {name})");
    }
    for name in &report.only_in_fresh {
        let _ = writeln!(out, "  (new case, no baseline yet: {name})");
    }
    out.push_str(&ratchet_lines);
    if regressions.is_empty() && violated.is_empty() {
        let _ = writeln!(out, "PASS: no case more than {threshold}× slower than the median");
        Ok(out)
    } else {
        if !regressions.is_empty() {
            let _ = writeln!(
                out,
                "FAIL: {} case(s) regressed more than {threshold}× vs the suite median: {}",
                regressions.len(),
                regressions.join(", ")
            );
        }
        if !violated.is_empty() {
            let _ = writeln!(
                out,
                "FAIL: {} ratchet(s) violated in the fresh artefact: {}",
                violated.len(),
                violated.join("; ")
            );
        }
        Err(out)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut positional = Vec::new();
    let mut threshold = 2.0f64;
    let mut ratchets = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--threshold" {
            match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 1.0 => threshold = v,
                _ => {
                    eprintln!("--threshold needs a value > 1.0");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else if args[i] == "--max-ratio" {
            let (Some(num), Some(den), Some(limit)) = (
                args.get(i + 1),
                args.get(i + 2),
                args.get(i + 3).and_then(|v| v.parse::<f64>().ok()),
            ) else {
                eprintln!("--max-ratio needs <numerator_case> <denominator_case> <limit>");
                return ExitCode::FAILURE;
            };
            if limit <= 0.0 {
                eprintln!("--max-ratio limit must be positive");
                return ExitCode::FAILURE;
            }
            ratchets.push(MaxRatio { numerator: num.clone(), denominator: den.clone(), limit });
            i += 4;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline, fresh] = positional.as_slice() else {
        eprintln!(
            "usage: bench_gate <baseline.json> <fresh.json> [--threshold 2.0] \
             [--max-ratio <case_a> <case_b> <limit>]..."
        );
        return ExitCode::FAILURE;
    };
    match run(baseline, fresh, threshold, &ratchets) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {
    "name": "sparse/C3",
    "mean_ns": 1000,
    "iterations": 15
  },
  {
    "name": "dense/C3",
    "mean_ns": 4000,
    "iterations": 15
  },
  {
    "name": "fastpath/C3",
    "mean_ns": 200,
    "iterations": 15
  }
]"#;

    fn rows(pairs: &[(&str, u128)]) -> Vec<BenchRow> {
        pairs.iter().map(|(n, m)| BenchRow { name: n.to_string(), mean_ns: *m }).collect()
    }

    #[test]
    fn parses_the_artefact_shape() {
        let parsed = parse_rows(SAMPLE).unwrap();
        assert_eq!(parsed, rows(&[("sparse/C3", 1000), ("dense/C3", 4000), ("fastpath/C3", 200)]));
    }

    #[test]
    fn rejects_malformed_artefacts() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows("[]").is_err());
        assert!(parse_rows(r#"[{"name": "x"}]"#).is_err());
        assert!(parse_rows(r#"[{"mean_ns": 3}]"#).is_err());
        assert!(parse_rows(r#"[{"name": "x", "mean_ns": "fast"}]"#).is_err());
    }

    #[test]
    fn uniform_slowdown_is_absorbed_by_the_hardware_factor() {
        // Every case 5× slower: a slower runner, not a regression.
        let base = rows(&[("a", 100), ("b", 200), ("c", 400)]);
        let fresh = rows(&[("a", 500), ("b", 1000), ("c", 2000)]);
        let report = compare(&base, &fresh).unwrap();
        assert!((report.hardware_factor - 5.0).abs() < 1e-9);
        assert!(report.cases.iter().all(|(_, _, n)| (n - 1.0).abs() < 1e-9));
    }

    #[test]
    fn single_case_regression_is_flagged() {
        let base = rows(&[("a", 100), ("b", 200), ("c", 400)]);
        // `c` regresses 10× while the others are unchanged.
        let fresh = rows(&[("a", 100), ("b", 200), ("c", 4000)]);
        let report = compare(&base, &fresh).unwrap();
        assert!((report.hardware_factor - 1.0).abs() < 1e-9);
        let c = report.cases.iter().find(|(n, _, _)| n == "c").unwrap();
        assert!(c.2 > 2.0, "normalised ratio {}", c.2);
        let a = report.cases.iter().find(|(n, _, _)| n == "a").unwrap();
        assert!(a.2 <= 2.0);
    }

    #[test]
    fn unmatched_cases_are_reported_not_fatal() {
        let base = rows(&[("a", 100), ("gone", 50)]);
        let fresh = rows(&[("a", 120), ("new", 70)]);
        let report = compare(&base, &fresh).unwrap();
        assert_eq!(report.only_in_base, vec!["gone".to_string()]);
        assert_eq!(report.only_in_fresh, vec!["new".to_string()]);
        assert_eq!(report.cases.len(), 1);
    }

    #[test]
    fn disjoint_suites_are_an_error() {
        let base = rows(&[("a", 100)]);
        let fresh = rows(&[("b", 100)]);
        assert!(compare(&base, &fresh).is_err());
    }

    #[test]
    fn median_of_even_and_odd_lengths() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn end_to_end_pass_and_fail() {
        let dir = std::env::temp_dir().join("bench_gate_test");
        fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("base.json");
        let fresh_path = dir.join("fresh.json");
        fs::write(&base_path, SAMPLE).unwrap();
        fs::write(&fresh_path, SAMPLE).unwrap();
        let ok = run(base_path.to_str().unwrap(), fresh_path.to_str().unwrap(), 2.0, &[]);
        assert!(ok.is_ok());
        assert!(ok.unwrap().contains("PASS"));
        // One case blown up 100×.
        fs::write(&fresh_path, SAMPLE.replace("\"mean_ns\": 200", "\"mean_ns\": 20000")).unwrap();
        let bad = run(base_path.to_str().unwrap(), fresh_path.to_str().unwrap(), 2.0, &[]);
        assert!(bad.is_err());
        assert!(bad.unwrap_err().contains("FAIL"));
    }

    fn ratchet(num: &str, den: &str, limit: f64) -> MaxRatio {
        MaxRatio { numerator: num.to_string(), denominator: den.to_string(), limit }
    }

    #[test]
    fn ratchet_passes_within_limit_and_fails_beyond_it() {
        // dense is 4× sparse in SAMPLE.
        let fresh = parse_rows(SAMPLE).unwrap();
        let (lines, violated) =
            check_ratchets(&fresh, &[ratchet("dense/C3", "sparse/C3", 4.5)]).unwrap();
        assert!(violated.is_empty(), "{lines}");
        assert!(lines.contains("4.000× (limit 4.500×) — ok"));

        let (lines, violated) =
            check_ratchets(&fresh, &[ratchet("dense/C3", "sparse/C3", 3.0)]).unwrap();
        assert_eq!(violated, vec!["dense/C3 / sparse/C3".to_string()]);
        assert!(lines.contains("VIOLATED"));
    }

    #[test]
    fn ratchet_on_a_missing_case_is_an_error() {
        let fresh = parse_rows(SAMPLE).unwrap();
        assert!(check_ratchets(&fresh, &[ratchet("nope", "sparse/C3", 2.0)]).is_err());
        assert!(check_ratchets(&fresh, &[ratchet("sparse/C3", "nope", 2.0)]).is_err());
    }

    #[test]
    fn a_violated_ratchet_fails_the_gate_even_without_regressions() {
        let dir = std::env::temp_dir().join("bench_gate_ratchet_test");
        fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("base.json");
        let fresh_path = dir.join("fresh.json");
        fs::write(&base_path, SAMPLE).unwrap();
        fs::write(&fresh_path, SAMPLE).unwrap();
        // Identical artefacts: the median gate passes, the ratchet decides.
        let ok = run(
            base_path.to_str().unwrap(),
            fresh_path.to_str().unwrap(),
            2.0,
            &[ratchet("dense/C3", "sparse/C3", 4.0)],
        );
        assert!(ok.is_ok());
        let bad = run(
            base_path.to_str().unwrap(),
            fresh_path.to_str().unwrap(),
            2.0,
            &[ratchet("dense/C3", "sparse/C3", 1.2)],
        );
        assert!(bad.is_err());
        assert!(bad.unwrap_err().contains("ratchet(s) violated"));
    }
}
